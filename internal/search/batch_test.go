package search

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/solve"
)

// randomMask returns a bitset over n bits with each bit set with probability
// p; with p == 0 the mask is empty (legal: nothing tested).
func randomMask(n int, p float64, rng *rand.Rand) Bitset {
	b := NewBitset(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			b.Set(i)
		}
	}
	return b
}

// TestCoverageBatchMatchesPerRule pins the batch API's contract on
// randomized batches: for both the serial Evaluator and the pooled
// ParallelEvaluator, CoverageBatch must be bit-for-bit identical to one
// Coverage call per rule — including nil, empty, and narrow candidate masks,
// and batches small enough to stay under parallelThreshold.
func TestCoverageBatchMatchesPerRule(t *testing.T) {
	fx := newFixture(t)
	pe := NewParallelEvaluator(fx.kb, fx.ex, solve.DefaultBudget, 4)
	defer pe.Close()
	ref := NewEvaluator(solve.NewMachine(fx.kb, solve.DefaultBudget), fx.ex)
	rng := rand.New(rand.NewSource(23))

	for trial := 0; trial < 40; trial++ {
		nRules := 1 + rng.Intn(6) // includes sub-threshold batches
		clauses := make([]logic.Clause, nRules)
		rules := make([]*logic.Clause, nRules)
		posCands := make([]Bitset, nRules)
		negCands := make([]Bitset, nRules)
		for i := range rules {
			clauses[i] = randomRuleFrom(fx, rng)
			rules[i] = &clauses[i]
			switch rng.Intn(4) {
			case 0: // nil masks: test everything
			case 1: // empty masks: test nothing
				posCands[i] = NewBitset(len(fx.ex.Pos))
				negCands[i] = NewBitset(len(fx.ex.Neg))
			default:
				posCands[i] = randomMask(len(fx.ex.Pos), rng.Float64(), rng)
				negCands[i] = randomMask(len(fx.ex.Neg), rng.Float64(), rng)
			}
		}
		for name, res := range map[string][]CoverResult{
			"serial":   fx.ev.CoverageBatch(rules, posCands, negCands),
			"parallel": pe.CoverageBatch(rules, posCands, negCands),
		} {
			if len(res) != nRules {
				t.Fatalf("%s: got %d results for %d rules", name, len(res), nRules)
			}
			for i := range rules {
				wantPos, wantNeg := ref.Coverage(rules[i], posCands[i], negCands[i])
				assertSameBits(t, name+"-pos", wantPos, res[i].Pos)
				assertSameBits(t, name+"-neg", wantNeg, res[i].Neg)
			}
		}
	}
}

// TestCoverageFullBatchMatchesPerRule does the same for the full-set batch
// used by the p²-mdie workers' bag evaluation.
func TestCoverageFullBatchMatchesPerRule(t *testing.T) {
	fx := newFixture(t)
	// Retract a positive so full-vs-alive masking is distinguishable.
	covered := NewBitset(len(fx.ex.Pos))
	covered.Set(1)
	fx.ex.RetractPos(covered)
	pe := NewParallelEvaluator(fx.kb, fx.ex, solve.DefaultBudget, 3)
	defer pe.Close()
	rng := rand.New(rand.NewSource(29))
	clauses := make([]logic.Clause, 5)
	rules := make([]*logic.Clause, 5)
	for i := range rules {
		clauses[i] = randomRuleFrom(fx, rng)
		rules[i] = &clauses[i]
	}
	serial := fx.ev.CoverageFullBatch(rules)
	pooled := pe.CoverageFullBatch(rules)
	for i := range rules {
		wantPos, wantNeg := fx.ev.CoverageFull(rules[i])
		assertSameBits(t, "serial-full-pos", wantPos, serial[i].Pos)
		assertSameBits(t, "serial-full-neg", wantNeg, serial[i].Neg)
		assertSameBits(t, "pool-full-pos", wantPos, pooled[i].Pos)
		assertSameBits(t, "pool-full-neg", wantNeg, pooled[i].Neg)
	}
}

// plainCoverer hides everything but the base Coverer interface, standing in
// for coverers that cannot batch (parcov's distributed coverer).
type plainCoverer struct {
	ev    *Evaluator
	calls int
}

func (p *plainCoverer) Coverage(rule *logic.Clause, posCand, negCand Bitset) (Bitset, Bitset) {
	p.calls++
	return p.ev.Coverage(rule, posCand, negCand)
}
func (p *plainCoverer) PosLen() int { return p.ev.PosLen() }
func (p *plainCoverer) NegLen() int { return p.ev.NegLen() }

// TestCoverageBatchOfFallsBackToLoop pins the adapter: a Coverer without
// CoverageBatch gets one Coverage call per rule and identical results, so
// LearnRule keeps working against non-batching coverers.
func TestCoverageBatchOfFallsBackToLoop(t *testing.T) {
	fx := newFixture(t)
	pc := &plainCoverer{ev: fx.ev}
	rules := []*logic.Clause{}
	var clauses []logic.Clause
	for _, ix := range [][]int32{nil, {0}, {0, 1}} {
		clauses = append(clauses, fx.bot.Materialize(ix))
	}
	for i := range clauses {
		rules = append(rules, &clauses[i])
	}
	res := CoverageBatchOf(pc, rules, nil, nil)
	if pc.calls != len(rules) {
		t.Fatalf("fallback adapter made %d Coverage calls for %d rules", pc.calls, len(rules))
	}
	for i := range rules {
		wantPos, wantNeg := fx.ev.Coverage(rules[i], nil, nil)
		assertSameBits(t, "fallback-pos", wantPos, res[i].Pos)
		assertSameBits(t, "fallback-neg", wantNeg, res[i].Neg)
	}

	// A search over the plain coverer must agree with the batched one.
	st := Settings{MaxClauseLen: 3, MinPrec: 0.9}
	plain := LearnRule(pc, fx.bot, nil, st)
	batched := LearnRule(fx.ev, fx.bot, nil, st)
	if plain.Generated != batched.Generated || len(plain.Good) != len(batched.Good) {
		t.Fatalf("plain coverer search diverged: generated %d vs %d, good %d vs %d",
			plain.Generated, batched.Generated, len(plain.Good), len(batched.Good))
	}
}

// TestLearnRuleBatchedMatchesUnbatched pins that batching is a pure
// performance change: identical Good rules (indices, coverage bitsets,
// scores), Generated counts and limit behavior, over both evaluators and
// both strategies, seeded and unseeded, with and without a NodesLimit.
func TestLearnRuleBatchedMatchesUnbatched(t *testing.T) {
	for _, workers := range []int{0, 4} {
		for _, strategy := range []Strategy{StrategyBFS, StrategyBestFirst} {
			for _, limit := range []int{0, 7} {
				for _, seeded := range []bool{false, true} {
					fxA := newFixture(t)
					fxB := newFixture(t)
					var evA, evB Coverer = fxA.ev, fxB.ev
					if workers > 0 {
						peA := NewParallelEvaluator(fxA.kb, fxA.ex, solve.DefaultBudget, workers)
						defer peA.Close()
						peB := NewParallelEvaluator(fxB.kb, fxB.ex, solve.DefaultBudget, workers)
						defer peB.Close()
						evA, evB = peA, peB
					}
					var seeds [][]int32
					if seeded {
						seeds = [][]int32{{0}, {1}}
					}
					st := Settings{MaxClauseLen: 3, MinPrec: 0.75, NodesLimit: limit, Strategy: strategy}
					stNo := st
					stNo.NoBatchEval = true
					batched := LearnRule(evA, fxA.bot, seeds, st)
					unbatched := LearnRule(evB, fxB.bot, seeds, stNo)
					if batched.Generated != unbatched.Generated || batched.ExhaustedNodes != unbatched.ExhaustedNodes {
						t.Fatalf("w=%d strat=%v limit=%d seeded=%v: generated %d/%v vs %d/%v",
							workers, strategy, limit, seeded,
							batched.Generated, batched.ExhaustedNodes, unbatched.Generated, unbatched.ExhaustedNodes)
					}
					if len(batched.Good) != len(unbatched.Good) {
						t.Fatalf("good counts differ: %d vs %d", len(batched.Good), len(unbatched.Good))
					}
					for i := range batched.Good {
						a, b := batched.Good[i], unbatched.Good[i]
						if !equalIndices(a.Indices, b.Indices) || a.Score != b.Score {
							t.Fatalf("good[%d] differs: %v/%v vs %v/%v", i, a.Indices, a.Score, b.Indices, b.Score)
						}
						assertSameBits(t, "good-pos", a.PosCover(), b.PosCover())
						assertSameBits(t, "good-neg", a.NegCover(), b.NegCover())
					}
				}
			}
		}
	}
}

// TestBatchAccountingInvariant pins the two pool invariants the persistent
// shard pool must keep under dynamic scheduling: results bit-for-bit equal
// to serial evaluation, and total inference accounting both deterministic
// across runs and equal to the serial evaluator's (per-task SLD work is
// fixed no matter which shard machine claims the task).
func TestBatchAccountingInvariant(t *testing.T) {
	type outcome struct {
		inf   int64
		words []uint64
	}
	run := func(workers int) outcome {
		fx := newFixture(t)
		rng := rand.New(rand.NewSource(31))
		m := solve.NewMachine(fx.kb, solve.DefaultBudget)
		var ev interface {
			BatchCoverer
			CoverageFullBatch(rules []*logic.Clause) []CoverResult
		}
		var inferences func() int64
		if workers > 1 {
			pe := NewParallelEvaluator(fx.kb, fx.ex, solve.DefaultBudget, workers)
			defer pe.Close()
			ev = pe
			inferences = pe.OwnInferences
		} else {
			ev = NewEvaluator(m, fx.ex)
			inferences = m.TotalInferences
		}
		var got outcome
		for trial := 0; trial < 10; trial++ {
			nRules := 1 + rng.Intn(5)
			clauses := make([]logic.Clause, nRules)
			rules := make([]*logic.Clause, nRules)
			posCands := make([]Bitset, nRules)
			negCands := make([]Bitset, nRules)
			for i := range rules {
				clauses[i] = randomRuleFrom(fx, rng)
				rules[i] = &clauses[i]
				if rng.Intn(2) == 0 {
					posCands[i] = randomMask(len(fx.ex.Pos), 0.7, rng)
					negCands[i] = randomMask(len(fx.ex.Neg), 0.7, rng)
				}
			}
			for _, r := range ev.CoverageBatch(rules, posCands, negCands) {
				got.words = append(got.words, r.Pos...)
				got.words = append(got.words, r.Neg...)
			}
			for _, r := range ev.CoverageFullBatch(rules[:1+rng.Intn(nRules)]) {
				got.words = append(got.words, r.Pos...)
				got.words = append(got.words, r.Neg...)
			}
		}
		got.inf = inferences()
		return got
	}

	serial := run(1)
	parA := run(4)
	parB := run(4)
	if serial.inf == 0 {
		t.Fatal("no inferences recorded")
	}
	if parA.inf != serial.inf {
		t.Fatalf("pool inference total %d != serial total %d", parA.inf, serial.inf)
	}
	if parA.inf != parB.inf {
		t.Fatalf("pool accounting not deterministic: %d vs %d", parA.inf, parB.inf)
	}
	if len(parA.words) != len(serial.words) || len(parA.words) != len(parB.words) {
		t.Fatalf("result stream lengths differ: %d/%d/%d", len(serial.words), len(parA.words), len(parB.words))
	}
	for i := range serial.words {
		if serial.words[i] != parA.words[i] || parA.words[i] != parB.words[i] {
			t.Fatalf("result word %d differs across runs", i)
		}
	}
}

// TestBatchPoolStress drives the persistent pool with batches big enough to
// cross parallelThreshold over and over; under -race this is the pool's
// synchronization proof (tasks claimed from the atomic cursor, disjoint
// output words, one wake/join per batch).
func TestBatchPoolStress(t *testing.T) {
	kb, ex, rule := benchWideExamples(t, 512)
	pe := NewParallelEvaluator(kb, ex, solve.DefaultBudget, 8)
	defer pe.Close()
	ref := NewEvaluator(solve.NewMachine(kb, solve.DefaultBudget), ex)
	wantPos, wantNeg := ref.CoverageFull(&rule)
	rules := make([]*logic.Clause, 7)
	for i := range rules {
		rules[i] = &rule
	}
	for round := 0; round < 50; round++ {
		for _, r := range pe.CoverageFullBatch(rules) {
			assertSameBits(t, "stress-pos", wantPos, r.Pos)
			assertSameBits(t, "stress-neg", wantNeg, r.Neg)
		}
		res := pe.CoverageBatch(rules, nil, nil)
		for _, r := range res {
			assertSameBits(t, "stress-alive-pos", wantPos, r.Pos)
		}
	}
}

// TestLearnRuleOnePoolSyncPerNode pins the acceptance criterion of the
// batch path: a batched search issues one batch evaluation per expanded
// node (plus one per initial seed), not one per generated candidate; the
// per-candidate path issues one per candidate. The rich task expands many
// candidates per node, so the two counts separate by the mean branching
// factor.
func TestLearnRuleOnePoolSyncPerNode(t *testing.T) {
	kb, ex, bot := benchRichExamples(t, 64)
	st := Settings{MaxClauseLen: 3, MinPrec: 0.9}

	pe := NewParallelEvaluator(kb, ex, solve.DefaultBudget, 4)
	defer pe.Close()
	res := LearnRule(pe, bot, nil, st)
	batches, wakes := pe.Stats()
	if res.Generated < 50 {
		t.Fatalf("task too small to be meaningful: %d generated", res.Generated)
	}
	// One batch per expanded node plus the root evaluation; expansion count
	// is bounded by (but usually far below) the generated count.
	if batches >= int64(res.Generated)/2 {
		t.Fatalf("batched search issued %d batch evaluations for %d candidates — not per-node batching", batches, res.Generated)
	}
	if wakes == 0 {
		t.Fatal("no batch crossed parallelThreshold; widen the task")
	}

	peNo := NewParallelEvaluator(kb, ex, solve.DefaultBudget, 4)
	defer peNo.Close()
	stNo := st
	stNo.NoBatchEval = true
	resNo := LearnRule(peNo, bot, nil, stNo)
	batchesNo, _ := peNo.Stats()
	if batchesNo != int64(resNo.Generated) {
		t.Fatalf("per-candidate path issued %d evaluations for %d candidates", batchesNo, resNo.Generated)
	}
	if batches*2 > batchesNo {
		t.Fatalf("batching saved too little: %d batched vs %d per-candidate evaluations", batches, batchesNo)
	}
}

// TestFifoOpenHeadAndCompaction pins the frontier fix: FIFO order survives
// interleaved pushes and pops, the popped prefix is released (slots nilled,
// head compacted), and the queue never grows past live content.
func TestFifoOpenHeadAndCompaction(t *testing.T) {
	f := &fifoOpen{}
	next, popped := 0, 0
	push := func(n int) {
		for i := 0; i < n; i++ {
			f.push(&Candidate{Pos: next})
			next++
		}
	}
	pop := func(n int) {
		for i := 0; i < n; i++ {
			c := f.pop()
			if c.Pos != popped {
				t.Fatalf("pop order broken: got %d, want %d", c.Pos, popped)
			}
			popped++
		}
	}
	push(100)
	pop(70) // crosses the head≥64 && head*2≥len compaction trigger at pop 64
	if live := len(f.q) - f.head; live != 30 {
		t.Fatalf("live count wrong: %d", live)
	}
	if len(f.q) >= 100 {
		t.Fatalf("no compaction: head=%d len=%d", f.head, len(f.q))
	}
	push(40)
	pop(70)
	if !f.empty() {
		t.Fatal("queue should be empty")
	}
	// Un-compacted popped slots must be nilled so candidates are released.
	g := &fifoOpen{}
	g.push(&Candidate{})
	g.push(&Candidate{})
	g.pop()
	if g.q[0] != nil {
		t.Fatal("popped slot still holds the candidate")
	}
}

// oldIndicesKey is the seed implementation the allocation-free key replaced;
// kept here as the reference for key and ordering semantics.
func oldIndicesKey(ix []int32) string {
	var b strings.Builder
	for i, v := range ix {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(v)))
	}
	return b.String()
}

// TestCandKeyMatchesStringKey verifies the bitmap key dedups exactly like
// the old string key (equal keys iff equal index sets) and that the FNV
// fallback beyond 256 literals cannot collide with bitmap keys.
func TestCandKeyMatchesStringKey(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	seenOld := map[string][]int32{}
	seenNew := map[candKey][]int32{}
	for trial := 0; trial < 2000; trial++ {
		var ix []int32
		for j := int32(0); j < 200; j++ {
			if rng.Intn(20) == 0 {
				ix = append(ix, j)
			}
		}
		old := oldIndicesKey(ix)
		neu := makeCandKey(ix, 200)
		if prev, ok := seenOld[old]; ok != (seenNew[neu] != nil) {
			t.Fatalf("key disagreement for %v (prev %v)", ix, prev)
		}
		seenOld[old] = ix
		seenNew[neu] = ix
	}

	// Caller-supplied seeds may repeat an index; the key must keep such
	// lists distinct from their deduplicated forms, as the string key did.
	if makeCandKey([]int32{1, 1, 2}, 200) == makeCandKey([]int32{1, 2}, 200) {
		t.Fatal("duplicate-bearing index list collided with its dedup")
	}

	// Fallback keys are tagged: word 3 is all-ones, which a 256-literal
	// bitmap key over ascending indices < 192 can never set.
	big := makeCandKey([]int32{0, 300, 999}, 1000)
	if big[3] != ^uint64(0) {
		t.Fatalf("fallback key not tagged: %v", big)
	}
	if big == makeCandKey([]int32{0, 300, 998}, 1000) {
		t.Fatal("distinct big index lists collided")
	}
	if makeCandKey([]int32{0, 300, 999}, 1000) != big {
		t.Fatal("fallback key not deterministic")
	}
}

// TestLessIndicesMatchesStringOrder pins the tie-break comparator to the
// old string ordering exactly (the order decides which W rules a stage
// forwards, so it must not drift).
func TestLessIndicesMatchesStringOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	randIx := func() []int32 {
		n := rng.Intn(5)
		out := make([]int32, 0, n)
		v := int32(0)
		for i := 0; i < n; i++ {
			v += int32(1 + rng.Intn(40))
			out = append(out, v)
		}
		return out
	}
	for trial := 0; trial < 5000; trial++ {
		a, b := randIx(), randIx()
		want := oldIndicesKey(a) < oldIndicesKey(b)
		if got := lessIndices(a, b); got != want {
			t.Fatalf("lessIndices(%v, %v) = %v, string order says %v", a, b, got, want)
		}
	}
}
