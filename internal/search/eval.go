package search

import (
	"repro/internal/logic"
	"repro/internal/solve"
)

// Coverer abstracts rule-coverage computation so the search can run against
// a local evaluator (this package's Evaluator), a multicore one
// (ParallelEvaluator), or a distributed one (the parallel-coverage baseline
// farms tests out to cluster workers).
type Coverer interface {
	// Coverage returns bitsets over the positive and negative example
	// index spaces; non-nil candidate masks restrict which examples are
	// (re-)tested.
	Coverage(rule *logic.Clause, posCand, negCand Bitset) (pos, neg Bitset)
	// PosLen and NegLen return the sizes of the index spaces.
	PosLen() int
	NegLen() int
}

// CoverResult is one rule's evaluation within a batch: the bitsets of
// covered positives and negatives, exactly as Coverage would return them.
type CoverResult struct {
	Pos, Neg Bitset
}

// BatchCoverer extends Coverer with whole-frontier evaluation: all candidate
// rules of one search-node expansion scored in a single call, so a parallel
// implementation pays one pool synchronisation per node instead of one
// goroutine fan-out per candidate. Coverers that cannot batch (the
// distributed parcov coverer) are adapted via CoverageBatchOf.
type BatchCoverer interface {
	Coverer
	// CoverageBatch evaluates rules[i] under posCands[i]/negCands[i]
	// (candidate masks, nil entries meaning "test everything", same
	// semantics as Coverage) and returns one CoverResult per rule, in
	// order. posCands/negCands may themselves be nil, meaning all-nil.
	// Results are bit-for-bit identical to len(rules) Coverage calls.
	CoverageBatch(rules []*logic.Clause, posCands, negCands []Bitset) []CoverResult
}

// CoverageBatchOf evaluates a batch through ev, using its native
// CoverageBatch when available and falling back to a per-rule Coverage loop
// otherwise. This keeps interface growth compatible: plain Coverers (such as
// parcov's distributed coverer) work unchanged.
func CoverageBatchOf(ev Coverer, rules []*logic.Clause, posCands, negCands []Bitset) []CoverResult {
	if bc, ok := ev.(BatchCoverer); ok {
		return bc.CoverageBatch(rules, posCands, negCands)
	}
	return coverageLoop(ev, rules, posCands, negCands)
}

// coverageLoop is the shared per-rule batch fallback: one Coverage call per
// rule, nil mask slices meaning all-nil.
func coverageLoop(ev Coverer, rules []*logic.Clause, posCands, negCands []Bitset) []CoverResult {
	out := make([]CoverResult, len(rules))
	for i, r := range rules {
		var pc, nc Bitset
		if posCands != nil {
			pc = posCands[i]
		}
		if negCands != nil {
			nc = negCands[i]
		}
		out[i].Pos, out[i].Neg = ev.Coverage(r, pc, nc)
	}
	return out
}

// FullCoverer extends Coverer with whole-set evaluation and inference
// accounting, the surface the p²-mdie workers need from their local
// evaluator regardless of whether it is serial or multicore.
type FullCoverer interface {
	Coverer
	// CoverageFull evaluates over every positive (retracted or not) and
	// every negative; callers memoise the result.
	CoverageFull(rule *logic.Clause) (pos, neg Bitset)
	// CoverageFullBatch is CoverageFull over a whole rules bag in one
	// call (one pool synchronisation on a parallel implementation).
	CoverageFullBatch(rules []*logic.Clause) []CoverResult
	// OwnInferences reports the SLD work done by machines the evaluator
	// owns. The serial Evaluator borrows its caller's machine — which the
	// caller already accounts for — so it reports 0; the parallel
	// evaluator owns one machine per shard and reports their sum.
	OwnInferences() int64
	// Close releases evaluator-owned resources (a parallel evaluator's
	// persistent shard pool). The evaluator must not be used afterwards.
	Close()
}

// Evaluator computes rule coverage over an example store using an SLD
// machine. Coverage of a refinement is computed only over the examples its
// parent covered (candidate masks), the standard MDIE evaluation shortcut:
// specialisation can only shrink coverage.
type Evaluator struct {
	M  *solve.Machine
	Ex *Examples

	scratch Bitset // reused candidate-mask buffer; never escapes Coverage
}

var _ FullCoverer = (*Evaluator)(nil)

// PosLen returns the positive example count.
func (ev *Evaluator) PosLen() int { return len(ev.Ex.Pos) }

// NegLen returns the negative example count.
func (ev *Evaluator) NegLen() int { return len(ev.Ex.Neg) }

// OwnInferences reports 0: the Evaluator borrows its caller's machine.
func (ev *Evaluator) OwnInferences() int64 { return 0 }

// Close is a no-op: the Evaluator owns no goroutines or machines.
func (ev *Evaluator) Close() {}

// NewEvaluator pairs a machine with an example store.
func NewEvaluator(m *solve.Machine, ex *Examples) *Evaluator {
	return &Evaluator{M: m, Ex: ex}
}

// Coverage returns bitsets of the alive positives and of the negatives that
// rule covers. Non-nil candidate masks restrict which examples are tested
// (bits outside the mask come back clear).
func (ev *Evaluator) Coverage(rule *logic.Clause, posCand, negCand Bitset) (pos, neg Bitset) {
	pos = NewBitset(len(ev.Ex.Pos))
	neg = NewBitset(len(ev.Ex.Neg))
	testPos := ev.Ex.PosAlive
	if posCand != nil {
		// Intersect into a scratch buffer owned by the evaluator instead of
		// cloning the candidate mask on every call.
		ev.scratch = IntersectInto(ev.scratch, posCand, ev.Ex.PosAlive)
		testPos = ev.scratch
	}
	testPos.ForEach(func(i int) bool {
		if ev.M.CoversExample(rule, ev.Ex.Pos[i]) {
			pos.Set(i)
		}
		return true
	})
	if negCand != nil {
		negCand.ForEach(func(i int) bool {
			if ev.M.CoversExample(rule, ev.Ex.Neg[i]) {
				neg.Set(i)
			}
			return true
		})
		return pos, neg
	}
	for i := range ev.Ex.Neg {
		if ev.M.CoversExample(rule, ev.Ex.Neg[i]) {
			neg.Set(i)
		}
	}
	return pos, neg
}

// CoverageBatch evaluates a batch of rules serially, one Coverage call per
// rule. The serial evaluator gains nothing from batching; the method exists
// so the search layer can issue whole-frontier calls against any FullCoverer.
func (ev *Evaluator) CoverageBatch(rules []*logic.Clause, posCands, negCands []Bitset) []CoverResult {
	return coverageLoop(ev, rules, posCands, negCands)
}

// CoverageFullBatch evaluates a rules bag serially (see CoverageFull).
func (ev *Evaluator) CoverageFullBatch(rules []*logic.Clause) []CoverResult {
	out := make([]CoverResult, len(rules))
	for i, r := range rules {
		out[i].Pos, out[i].Neg = ev.CoverageFull(r)
	}
	return out
}

// CoverageCounts evaluates rule over all alive positives and all negatives
// and returns the counts (used for rules-bag evaluation, Fig. 6
// evaluate_rules).
func (ev *Evaluator) CoverageCounts(rule *logic.Clause) (pos, neg int) {
	p, n := ev.Coverage(rule, nil, nil)
	return p.Count(), n.Count()
}

// CoverageFull evaluates rule over every positive — retracted or not — and
// every negative. Coverage over a fixed example set is intrinsic to the
// rule, so callers can memoise the result and derive alive counts by
// masking with the current alive set (the standard coverage-caching
// optimisation of MDIE engines; the p²-mdie workers use it to make
// repeated rules-bag evaluations cheap).
func (ev *Evaluator) CoverageFull(rule *logic.Clause) (pos, neg Bitset) {
	pos = NewBitset(len(ev.Ex.Pos))
	neg = NewBitset(len(ev.Ex.Neg))
	for i := range ev.Ex.Pos {
		if ev.M.CoversExample(rule, ev.Ex.Pos[i]) {
			pos.Set(i)
		}
	}
	for i := range ev.Ex.Neg {
		if ev.M.CoversExample(rule, ev.Ex.Neg[i]) {
			neg.Set(i)
		}
	}
	return pos, neg
}

// TheoryCovers reports whether any rule of the theory covers the ground
// example atom (used for prediction on test data).
func TheoryCovers(m *solve.Machine, theory []logic.Clause, example logic.Term) bool {
	for i := range theory {
		if m.CoversExample(&theory[i], example) {
			return true
		}
	}
	return false
}
