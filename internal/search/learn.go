// Package search implements the bottom-clause-constrained rule search of
// MDIE systems: candidate rules are subsets of the bottom clause's literals,
// explored top-down (general to specific) breadth-first, ordered by
// θ-subsumption and scored on example coverage.
//
// LearnRule implements both the sequential learn_rule of the paper's Fig. 2
// (no seeds) and the pipelined learn_rule' of Fig. 7 (search restarted from
// the rules found by the previous pipeline stage).
package search

import (
	"container/heap"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bottom"
	"repro/internal/logic"
)

// openList abstracts the search frontier: FIFO for breadth-first, a
// score-ordered priority queue for best-first.
type openList interface {
	push(*Candidate)
	pop() *Candidate
	empty() bool
}

// fifoOpen is the breadth-first frontier.
type fifoOpen struct{ q []*Candidate }

func (f *fifoOpen) push(c *Candidate) { f.q = append(f.q, c) }
func (f *fifoOpen) pop() *Candidate {
	c := f.q[0]
	f.q = f.q[1:]
	return c
}
func (f *fifoOpen) empty() bool { return len(f.q) == 0 }

// heapOpen is the best-first frontier: highest score first, ties broken by
// insertion order for determinism.
type heapOpen struct {
	items []heapItem
	seq   int
}

type heapItem struct {
	c   *Candidate
	seq int
}

func (h *heapOpen) Len() int { return len(h.items) }
func (h *heapOpen) Less(i, j int) bool {
	if h.items[i].c.Score != h.items[j].c.Score {
		return h.items[i].c.Score > h.items[j].c.Score
	}
	return h.items[i].seq < h.items[j].seq
}
func (h *heapOpen) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *heapOpen) Push(x any)    { h.items = append(h.items, x.(heapItem)) }
func (h *heapOpen) Pop() any {
	last := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return last
}

func (h *heapOpen) push(c *Candidate) {
	heap.Push(h, heapItem{c: c, seq: h.seq})
	h.seq++
}
func (h *heapOpen) pop() *Candidate { return heap.Pop(h).(heapItem).c }
func (h *heapOpen) empty() bool     { return len(h.items) == 0 }

func newOpenList(s Strategy) openList {
	if s == StrategyBestFirst {
		return &heapOpen{}
	}
	return &fifoOpen{}
}

// Candidate is one searched rule: a set of bottom-clause literal indices
// plus its local evaluation.
type Candidate struct {
	// Indices are the bottom-clause body literal positions, ascending.
	Indices []int32
	// Pos and Neg are local coverage counts (alive positives, negatives).
	Pos, Neg int
	// Score is the heuristic value under the search settings.
	Score float64

	posCov Bitset
	negCov Bitset
}

// PosCover returns the bitset of alive positives the candidate covers.
func (c *Candidate) PosCover() Bitset { return c.posCov }

// NegCover returns the bitset of negatives the candidate covers.
func (c *Candidate) NegCover() Bitset { return c.negCov }

// Materialize builds the rule clause against its bottom clause.
func (c *Candidate) Materialize(bot *bottom.Bottom) logic.Clause {
	return bot.Materialize(c.Indices)
}

func indicesKey(ix []int32) string {
	var b strings.Builder
	for i, v := range ix {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(v)))
	}
	return b.String()
}

// Result is the outcome of one rule search.
type Result struct {
	// Good holds the best W acceptable rules (all acceptable rules when W
	// is unlimited), sorted best-first. Seeds are always retained, as in
	// Fig. 7 ("Good = S"), even if locally poor — the master's global
	// evaluation weeds them out.
	Good []*Candidate
	// Generated counts rules evaluated during this search.
	Generated int
	// ExhaustedNodes reports that the NodesLimit stopped the search.
	ExhaustedNodes bool
}

// Best returns the top candidate, or nil if none is acceptable.
func (r *Result) Best() *Candidate {
	if len(r.Good) == 0 {
		return nil
	}
	return r.Good[0]
}

// LearnRule searches the subset lattice of bot's literals for good rules.
// With seeds == nil the search starts from the empty-bodied rule (Fig. 2);
// otherwise the open set and initial Good are the seed rules (Fig. 7), each
// re-evaluated on the local examples. The best W good rules are returned.
func LearnRule(ev Coverer, bot *bottom.Bottom, seeds [][]int32, st Settings) *Result {
	st = st.WithDefaults()
	res := &Result{}
	seen := make(map[string]bool)
	open := newOpenList(st.Strategy)
	var good []*Candidate

	addInitial := func(ix []int32, forceGood bool) {
		if !validIndices(ix, len(bot.Lits)) {
			return
		}
		sorted := append([]int32(nil), ix...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		key := indicesKey(sorted)
		if seen[key] {
			return
		}
		seen[key] = true
		cand := evaluate(ev, bot, sorted, nil, nil, st)
		res.Generated++
		open.push(cand)
		if forceGood || st.IsGood(cand.Pos, cand.Neg) {
			good = append(good, cand)
		}
	}

	if len(seeds) == 0 {
		addInitial(nil, false)
	} else {
		for _, s := range seeds {
			// Seeds stay in Good unconditionally (paper Fig. 7 line 1).
			addInitial(s, true)
		}
	}

	for !open.empty() && res.Generated < st.NodesLimit {
		node := open.pop()
		if len(node.Indices) >= st.MaxClauseLen {
			continue
		}
		if node.Pos < st.MinPos {
			continue // specialisation cannot regain positives
		}
		if node.Neg == 0 && len(node.Indices) > 0 {
			continue // consistent already; refining only loses coverage
		}
		bound := boundVars(bot, node.Indices)
		for j := int32(0); int(j) < len(bot.Lits); j++ {
			if containsIndex(node.Indices, j) {
				continue
			}
			if !inputsBound(bot.Info[j].InVars, bound) {
				continue
			}
			child := insertSorted(node.Indices, j)
			key := indicesKey(child)
			if seen[key] {
				continue
			}
			seen[key] = true
			cand := evaluate(ev, bot, child, node.posCov, node.negCov, st)
			res.Generated++
			if st.IsGood(cand.Pos, cand.Neg) {
				good = append(good, cand)
			}
			if cand.Pos >= st.MinPos {
				open.push(cand)
			}
			if res.Generated >= st.NodesLimit {
				res.ExhaustedNodes = true
				break
			}
		}
	}
	if res.Generated >= st.NodesLimit {
		res.ExhaustedNodes = true
	}

	sortCandidates(good)
	if st.W > 0 && len(good) > st.W {
		good = good[:st.W]
	}
	res.Good = good
	return res
}

// evaluate scores one candidate; parent coverage masks (may be nil) restrict
// the examples re-tested.
func evaluate(ev Coverer, bot *bottom.Bottom, ix []int32, posCand, negCand Bitset, st Settings) *Candidate {
	clause := bot.Materialize(ix)
	pos, neg := ev.Coverage(&clause, posCand, negCand)
	c := &Candidate{Indices: ix, posCov: pos, negCov: neg}
	c.Pos = pos.Count()
	c.Neg = neg.Count()
	c.Score = st.Score(c.Pos, c.Neg, len(ix))
	return c
}

// sortCandidates orders best-first with deterministic tie-breaks:
// score desc, positives desc, shorter first, then index-key order.
func sortCandidates(cs []*Candidate) {
	sort.SliceStable(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Pos != b.Pos {
			return a.Pos > b.Pos
		}
		if len(a.Indices) != len(b.Indices) {
			return len(a.Indices) < len(b.Indices)
		}
		return indicesKey(a.Indices) < indicesKey(b.Indices)
	})
}

func validIndices(ix []int32, n int) bool {
	for _, v := range ix {
		if v < 0 || int(v) >= n {
			return false
		}
	}
	return true
}

func containsIndex(ix []int32, j int32) bool {
	for _, v := range ix {
		if v == j {
			return true
		}
	}
	return false
}

func insertSorted(ix []int32, j int32) []int32 {
	out := make([]int32, 0, len(ix)+1)
	inserted := false
	for _, v := range ix {
		if !inserted && j < v {
			out = append(out, j)
			inserted = true
		}
		out = append(out, v)
	}
	if !inserted {
		out = append(out, j)
	}
	return out
}

// boundVars returns the variables bound by the head plus the chosen literals.
func boundVars(bot *bottom.Bottom, ix []int32) map[int32]bool {
	bound := make(map[int32]bool, len(bot.HeadVars)+2*len(ix))
	for _, v := range bot.HeadVars {
		bound[v] = true
	}
	for _, i := range ix {
		for _, v := range bot.Info[i].InVars {
			bound[v] = true
		}
		for _, v := range bot.Info[i].OutVars {
			bound[v] = true
		}
	}
	return bound
}

func inputsBound(in []int32, bound map[int32]bool) bool {
	for _, v := range in {
		if !bound[v] {
			return false
		}
	}
	return true
}
