// Package search implements the bottom-clause-constrained rule search of
// MDIE systems: candidate rules are subsets of the bottom clause's literals,
// explored top-down (general to specific) breadth-first, ordered by
// θ-subsumption and scored on example coverage.
//
// LearnRule implements both the sequential learn_rule of the paper's Fig. 2
// (no seeds) and the pipelined learn_rule' of Fig. 7 (search restarted from
// the rules found by the previous pipeline stage).
package search

import (
	"container/heap"
	"sort"

	"repro/internal/bottom"
	"repro/internal/logic"
)

// openList abstracts the search frontier: FIFO for breadth-first, a
// score-ordered priority queue for best-first.
type openList interface {
	push(*Candidate)
	pop() *Candidate
	empty() bool
}

// fifoOpen is the breadth-first frontier. Popping advances a head index
// instead of re-slicing (q = q[1:] would keep every popped candidate — and
// its coverage bitsets — reachable through the backing array for the whole
// search); popped slots are nilled out and the queue compacts once the dead
// prefix dominates, so long breadth-first searches release their tail.
type fifoOpen struct {
	q    []*Candidate
	head int
}

func (f *fifoOpen) push(c *Candidate) { f.q = append(f.q, c) }
func (f *fifoOpen) pop() *Candidate {
	c := f.q[f.head]
	f.q[f.head] = nil
	f.head++
	if f.head >= 64 && f.head*2 >= len(f.q) {
		n := copy(f.q, f.q[f.head:])
		for i := n; i < len(f.q); i++ {
			f.q[i] = nil // the copy left stale duplicates in the tail
		}
		f.q = f.q[:n]
		f.head = 0
	}
	return c
}
func (f *fifoOpen) empty() bool { return f.head >= len(f.q) }

// heapOpen is the best-first frontier: highest score first, ties broken by
// insertion order for determinism.
type heapOpen struct {
	items []heapItem
	seq   int
}

type heapItem struct {
	c   *Candidate
	seq int
}

func (h *heapOpen) Len() int { return len(h.items) }
func (h *heapOpen) Less(i, j int) bool {
	if h.items[i].c.Score != h.items[j].c.Score {
		return h.items[i].c.Score > h.items[j].c.Score
	}
	return h.items[i].seq < h.items[j].seq
}
func (h *heapOpen) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *heapOpen) Push(x any)    { h.items = append(h.items, x.(heapItem)) }
func (h *heapOpen) Pop() any {
	last := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return last
}

func (h *heapOpen) push(c *Candidate) {
	heap.Push(h, heapItem{c: c, seq: h.seq})
	h.seq++
}
func (h *heapOpen) pop() *Candidate { return heap.Pop(h).(heapItem).c }
func (h *heapOpen) empty() bool     { return len(h.items) == 0 }

func newOpenList(s Strategy) openList {
	if s == StrategyBestFirst {
		return &heapOpen{}
	}
	return &fifoOpen{}
}

// Candidate is one searched rule: a set of bottom-clause literal indices
// plus its local evaluation.
type Candidate struct {
	// Indices are the bottom-clause body literal positions, ascending.
	Indices []int32
	// Pos and Neg are local coverage counts (alive positives, negatives).
	Pos, Neg int
	// Score is the heuristic value under the search settings.
	Score float64

	posCov Bitset
	negCov Bitset
}

// PosCover returns the bitset of alive positives the candidate covers.
func (c *Candidate) PosCover() Bitset { return c.posCov }

// NegCover returns the bitset of negatives the candidate covers.
func (c *Candidate) NegCover() Bitset { return c.negCov }

// Materialize builds the rule clause against its bottom clause.
func (c *Candidate) Materialize(bot *bottom.Bottom) logic.Clause {
	return bot.Materialize(c.Indices)
}

// candKeyWords is the occupancy-bitmap capacity of a candKey; bottom clauses
// of up to candKeyWords*64 literals get exact, allocation-free keys.
const candKeyWords = 4

// candKey is an allocation-free dedup key for a candidate's literal set. For
// bottom clauses of at most 256 literals (MaxLiterals defaults to 128) it is
// the exact occupancy bitmap over literal positions; beyond that it falls
// back to a pair of FNV-1a hashes over the index list, tagged so bitmap and
// hash keys can never collide.
type candKey [candKeyWords]uint64

// makeCandKey builds the key for a sorted (ascending) index list over a
// bottom clause of nLits literals. Lists containing duplicates — impossible
// for the search's own children, but legal in caller-supplied seeds — take
// the hash path, which encodes the full sequence, so they keep keys
// distinct from their deduplicated forms exactly as the old string keys
// did.
func makeCandKey(ix []int32, nLits int) candKey {
	var k candKey
	if nLits <= candKeyWords*64 && !hasAdjacentDup(ix) {
		for _, v := range ix {
			k[v/64] |= 1 << (v % 64)
		}
		return k
	}
	const (
		fnvOffset uint64 = 14695981039346656037
		fnvPrime  uint64 = 1099511628211
	)
	h1, h2 := fnvOffset, fnvOffset^0x9E3779B97F4A7C15
	for _, v := range ix {
		u := uint64(uint32(v))
		for s := 0; s < 32; s += 8 {
			h1 = (h1 ^ (u >> s & 0xff)) * fnvPrime
			h2 = (h2 ^ (u >> s & 0xff)) * fnvPrime
		}
	}
	k[0], k[1], k[2], k[3] = h1, h2, uint64(len(ix)), ^uint64(0)
	return k
}

// hasAdjacentDup reports whether a sorted index list repeats a value.
func hasAdjacentDup(ix []int32) bool {
	for i := 1; i < len(ix); i++ {
		if ix[i] == ix[i-1] {
			return true
		}
	}
	return false
}

// Result is the outcome of one rule search.
type Result struct {
	// Good holds the best W acceptable rules (all acceptable rules when W
	// is unlimited), sorted best-first. Seeds are always retained, as in
	// Fig. 7 ("Good = S"), even if locally poor — the master's global
	// evaluation weeds them out.
	Good []*Candidate
	// Generated counts rules evaluated during this search.
	Generated int
	// ExhaustedNodes reports that the NodesLimit stopped the search.
	ExhaustedNodes bool
}

// Best returns the top candidate, or nil if none is acceptable.
func (r *Result) Best() *Candidate {
	if len(r.Good) == 0 {
		return nil
	}
	return r.Good[0]
}

// LearnRule searches the subset lattice of bot's literals for good rules.
// With seeds == nil the search starts from the empty-bodied rule (Fig. 2);
// otherwise the open set and initial Good are the seed rules (Fig. 7), each
// re-evaluated on the local examples. The best W good rules are returned.
//
// Node expansion is batched: all admissible children of a popped node are
// collected first (dedup, input-variable check) and evaluated in a single
// CoverageBatch call, so a batching Coverer pays one synchronisation per
// expanded node rather than one per candidate. Candidate ordering,
// Generated counts and NodesLimit semantics are identical to per-candidate
// evaluation (Settings.NoBatchEval selects the per-candidate path for A/B
// comparison).
func LearnRule(ev Coverer, bot *bottom.Bottom, seeds [][]int32, st Settings) *Result {
	st = st.WithDefaults()
	res := &Result{}
	seen := make(map[candKey]bool)
	open := newOpenList(st.Strategy)
	var good []*Candidate
	nLits := len(bot.Lits)

	addInitial := func(ix []int32, forceGood bool) {
		if !validIndices(ix, nLits) {
			return
		}
		sorted := append([]int32(nil), ix...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		key := makeCandKey(sorted, nLits)
		if seen[key] {
			return
		}
		seen[key] = true
		cand := evaluate(ev, bot, sorted, nil, nil, st)
		res.Generated++
		open.push(cand)
		if forceGood || st.IsGood(cand.Pos, cand.Neg) {
			good = append(good, cand)
		}
	}

	if len(seeds) == 0 {
		addInitial(nil, false)
	} else {
		for _, s := range seeds {
			// Seeds stay in Good unconditionally (paper Fig. 7 line 1).
			addInitial(s, true)
		}
	}

	// bound is the search-owned variable bitset reused across expansions
	// (one word per 64 bottom-clause variables instead of a map allocation
	// per popped node); children and fe are the reusable frontier buffers.
	bound := NewBitset(bot.NumVars)
	var children [][]int32
	var fe frontierBufs

	for !open.empty() && res.Generated < st.NodesLimit {
		node := open.pop()
		if len(node.Indices) >= st.MaxClauseLen {
			continue
		}
		if node.Pos < st.MinPos {
			continue // specialisation cannot regain positives
		}
		if node.Neg == 0 && len(node.Indices) > 0 {
			continue // consistent already; refining only loses coverage
		}
		fillBoundVars(bound, bot, node.Indices)
		children = children[:0]
		for j := int32(0); int(j) < nLits; j++ {
			if containsIndex(node.Indices, j) {
				continue
			}
			if !inputsBound(bot.Info[j].InVars, bound) {
				continue
			}
			child := insertSorted(node.Indices, j)
			key := makeCandKey(child, nLits)
			if seen[key] {
				continue
			}
			seen[key] = true
			children = append(children, child)
		}
		// NodesLimit truncation before evaluation preserves the
		// per-candidate path's semantics exactly: a child past the limit
		// was never evaluated there either, and the search stops right
		// after the limit is reached.
		if remaining := st.NodesLimit - res.Generated; len(children) > remaining {
			children = children[:remaining]
		}
		for _, cand := range fe.evaluateFrontier(ev, bot, children, node, st) {
			res.Generated++
			if st.IsGood(cand.Pos, cand.Neg) {
				good = append(good, cand)
			}
			if cand.Pos >= st.MinPos {
				open.push(cand)
			}
		}
	}
	if res.Generated >= st.NodesLimit {
		res.ExhaustedNodes = true
	}

	sortCandidates(good)
	if st.W > 0 && len(good) > st.W {
		good = good[:st.W]
	}
	res.Good = good
	return res
}

// frontierBufs holds the per-search scratch slices of batched frontier
// evaluation, reused across node expansions so the batch path adds no
// steady-state allocations over the per-candidate one.
type frontierBufs struct {
	cands    []*Candidate
	clauses  []logic.Clause
	rules    []*logic.Clause
	posCands []Bitset
	negCands []Bitset
}

// evaluateFrontier scores all children of one expanded node. The batched
// path issues a single CoverageBatch call (every child re-tests only the
// examples the shared parent covered); the NoBatchEval path evaluates each
// child with its own Coverage call. Both return candidates in child order
// with identical coverage bitsets and scores. The returned slice is valid
// until the next call.
func (fe *frontierBufs) evaluateFrontier(ev Coverer, bot *bottom.Bottom, children [][]int32, parent *Candidate, st Settings) []*Candidate {
	if len(children) == 0 {
		return nil
	}
	if cap(fe.cands) < len(children) {
		n := 2 * len(children)
		fe.cands = make([]*Candidate, 0, n)
		fe.clauses = make([]logic.Clause, 0, n)
		fe.rules = make([]*logic.Clause, 0, n)
		fe.posCands = make([]Bitset, 0, n)
		fe.negCands = make([]Bitset, 0, n)
	}
	fe.cands = fe.cands[:len(children)]
	if st.NoBatchEval {
		for i, ix := range children {
			fe.cands[i] = evaluate(ev, bot, ix, parent.posCov, parent.negCov, st)
		}
		return fe.cands
	}
	fe.clauses = fe.clauses[:len(children)]
	fe.rules = fe.rules[:len(children)]
	fe.posCands = fe.posCands[:len(children)]
	fe.negCands = fe.negCands[:len(children)]
	for i, ix := range children {
		fe.clauses[i] = bot.Materialize(ix)
		fe.rules[i] = &fe.clauses[i]
		fe.posCands[i] = parent.posCov
		fe.negCands[i] = parent.negCov
	}
	for i, r := range CoverageBatchOf(ev, fe.rules, fe.posCands, fe.negCands) {
		c := &Candidate{Indices: children[i], posCov: r.Pos, negCov: r.Neg}
		c.Pos = r.Pos.Count()
		c.Neg = r.Neg.Count()
		c.Score = st.Score(c.Pos, c.Neg, len(children[i]))
		fe.cands[i] = c
	}
	return fe.cands
}

// evaluate scores one candidate; parent coverage masks (may be nil) restrict
// the examples re-tested.
func evaluate(ev Coverer, bot *bottom.Bottom, ix []int32, posCand, negCand Bitset, st Settings) *Candidate {
	clause := bot.Materialize(ix)
	pos, neg := ev.Coverage(&clause, posCand, negCand)
	c := &Candidate{Indices: ix, posCov: pos, negCov: neg}
	c.Pos = pos.Count()
	c.Neg = neg.Count()
	c.Score = st.Score(c.Pos, c.Neg, len(ix))
	return c
}

// sortCandidates orders best-first with deterministic tie-breaks:
// score desc, positives desc, shorter first, then index-key order.
func sortCandidates(cs []*Candidate) {
	sort.SliceStable(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Pos != b.Pos {
			return a.Pos > b.Pos
		}
		if len(a.Indices) != len(b.Indices) {
			return len(a.Indices) < len(b.Indices)
		}
		return lessIndices(a.Indices, b.Indices)
	})
}

// lessIndices orders index lists by their comma-joined decimal rendering —
// the ordering the old string-key tie-break produced — without building the
// strings. The rendering order is pinned (rather than numeric order)
// because final-tie order decides which W rules a pipeline stage forwards,
// and changing it would change downstream searches.
func lessIndices(a, b []int32) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := cmpDecimal(a[i], b[i]); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}

// cmpDecimal three-way-compares the decimal renderings of two non-negative
// integers (so 10 sorts before 2, as strings do), using stack buffers.
func cmpDecimal(x, y int32) int {
	if x == y {
		return 0
	}
	var bx, by [12]byte
	dx := renderDecimal(&bx, x)
	dy := renderDecimal(&by, y)
	n := len(dx)
	if len(dy) < n {
		n = len(dy)
	}
	for i := 0; i < n; i++ {
		if dx[i] != dy[i] {
			if dx[i] < dy[i] {
				return -1
			}
			return 1
		}
	}
	// One rendering is a prefix of the other. In the joined key the shorter
	// element is followed by ',' or end-of-string, both below any digit.
	if len(dx) < len(dy) {
		return -1
	}
	return 1
}

// renderDecimal writes v's decimal digits into buf and returns the slice.
func renderDecimal(buf *[12]byte, v int32) []byte {
	i := len(buf)
	u := uint32(v)
	for {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
		if u == 0 {
			break
		}
	}
	return buf[i:]
}

func validIndices(ix []int32, n int) bool {
	for _, v := range ix {
		if v < 0 || int(v) >= n {
			return false
		}
	}
	return true
}

func containsIndex(ix []int32, j int32) bool {
	for _, v := range ix {
		if v == j {
			return true
		}
	}
	return false
}

func insertSorted(ix []int32, j int32) []int32 {
	out := make([]int32, 0, len(ix)+1)
	inserted := false
	for _, v := range ix {
		if !inserted && j < v {
			out = append(out, j)
			inserted = true
		}
		out = append(out, v)
	}
	if !inserted {
		out = append(out, j)
	}
	return out
}

// fillBoundVars resets bound and marks the variables bound by the head plus
// the chosen literals.
func fillBoundVars(bound Bitset, bot *bottom.Bottom, ix []int32) {
	for i := range bound {
		bound[i] = 0
	}
	for _, v := range bot.HeadVars {
		bound.Set(int(v))
	}
	for _, i := range ix {
		for _, v := range bot.Info[i].InVars {
			bound.Set(int(v))
		}
		for _, v := range bot.Info[i].OutVars {
			bound.Set(int(v))
		}
	}
}

func inputsBound(in []int32, bound Bitset) bool {
	for _, v := range in {
		if !bound.Get(int(v)) {
			return false
		}
	}
	return true
}
