package search

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

// These tests pin the semantic bridge the whole search rests on: the
// θ-subsumption generality order must agree with example coverage — if C
// subsumes D then every example D covers, C covers too (anti-monotonicity
// of coverage along the refinement lattice).

// randomRuleFrom picks a random subset of the fixture bottom clause.
func randomRuleFrom(fx *fixture, rng *rand.Rand) logic.Clause {
	var ix []int32
	for j := range fx.bot.Lits {
		if rng.Intn(3) == 0 {
			ix = append(ix, int32(j))
		}
	}
	return fx.bot.Materialize(ix)
}

func TestSubsumptionImpliesCoverageContainment(t *testing.T) {
	fx := newFixture(t)
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for trial := 0; trial < 200; trial++ {
		c := randomRuleFrom(fx, rng)
		d := randomRuleFrom(fx, rng)
		if !logic.Subsumes(&c, &d) {
			continue
		}
		checked++
		cPos, cNeg := fx.ev.Coverage(&c, nil, nil)
		dPos, dNeg := fx.ev.Coverage(&d, nil, nil)
		// d's coverage must be a subset of c's.
		onlyD := dPos.Clone()
		onlyD.AndNotWith(cPos)
		if !onlyD.Empty() {
			t.Fatalf("subsumption violated on positives:\nC: %s\nD: %s", c.String(), d.String())
		}
		onlyDN := dNeg.Clone()
		onlyDN.AndNotWith(cNeg)
		if !onlyDN.Empty() {
			t.Fatalf("subsumption violated on negatives:\nC: %s\nD: %s", c.String(), d.String())
		}
	}
	if checked < 10 {
		t.Fatalf("only %d subsumption pairs checked; fixture too sparse", checked)
	}
}

// Reduction must not change coverage: ReducesTo yields a subsume-equivalent
// clause, so the covered example sets must be identical.
func TestReductionPreservesCoverage(t *testing.T) {
	fx := newFixture(t)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		c := randomRuleFrom(fx, rng)
		r := logic.ReducesTo(&c)
		cPos, cNeg := fx.ev.Coverage(&c, nil, nil)
		rPos, rNeg := fx.ev.Coverage(&r, nil, nil)
		if cPos.Count() != rPos.Count() || cNeg.Count() != rNeg.Count() {
			t.Fatalf("reduction changed coverage:\noriginal: %s (%d/%d)\nreduced: %s (%d/%d)",
				c.String(), cPos.Count(), cNeg.Count(), r.String(), rPos.Count(), rNeg.Count())
		}
	}
}

// CoverageFull restricted to the alive mask must agree with Coverage.
func TestCoverageFullConsistentWithAliveCoverage(t *testing.T) {
	fx := newFixture(t)
	// Retract one positive to make the alive mask nontrivial.
	covered := NewBitset(len(fx.ex.Pos))
	covered.Set(1)
	fx.ex.RetractPos(covered)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		c := randomRuleFrom(fx, rng)
		fullPos, fullNeg := fx.ev.CoverageFull(&c)
		alivePos, aliveNeg := fx.ev.Coverage(&c, nil, nil)
		masked := fullPos.Clone()
		masked.AndWith(fx.ex.PosAlive)
		if masked.Count() != alivePos.Count() {
			t.Fatalf("full∧alive (%d) != alive coverage (%d) for %s", masked.Count(), alivePos.Count(), c.String())
		}
		if fullNeg.Count() != aliveNeg.Count() {
			t.Fatalf("negative coverage differs for %s", c.String())
		}
	}
}

// Property: coverage bitset counts are stable across repeated evaluation
// (the evaluator has no hidden state).
func TestQuickCoverageStable(t *testing.T) {
	fx := newFixture(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomRuleFrom(fx, rng)
		p1, n1 := fx.ev.Coverage(&c, nil, nil)
		p2, n2 := fx.ev.Coverage(&c, nil, nil)
		return p1.Count() == p2.Count() && n1.Count() == n2.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
