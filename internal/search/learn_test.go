package search

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

// equalIndices reports element-wise equality of two index lists.
func equalIndices(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSettingsDefaults(t *testing.T) {
	s := Settings{}.WithDefaults()
	if s.MaxClauseLen != 4 || s.NodesLimit != 2000 || s.MinPos != 1 || s.MinPrec != 0.7 {
		t.Fatalf("defaults: %+v", s)
	}
}

func TestScoreHeuristics(t *testing.T) {
	base := Settings{}.WithDefaults()
	cases := []struct {
		h    Heuristic
		want float64
	}{
		{HeurCoverage, 10 - 2},
		{HeurCompression, 10 - 2 - 3},
		{HeurPrecision, 11.0 / 14.0},
		{HeurMEstimate, (10 + 2*0.5) / (12 + 2)},
	}
	for _, c := range cases {
		s := base
		s.Heuristic = c.h
		if got := s.Score(10, 2, 3); got != c.want {
			t.Errorf("%s: Score = %v, want %v", c.h, got, c.want)
		}
	}
}

func TestParseHeuristic(t *testing.T) {
	for _, name := range []string{"", "coverage", "compression", "precision", "mestimate"} {
		if _, err := ParseHeuristic(name); err != nil {
			t.Errorf("ParseHeuristic(%q): %v", name, err)
		}
	}
	if _, err := ParseHeuristic("nope"); err == nil {
		t.Error("unknown heuristic accepted")
	}
}

func TestIsGood(t *testing.T) {
	s := Settings{MinPos: 2, MinPrec: 0.8}.WithDefaults()
	cases := []struct {
		pos, neg int
		want     bool
	}{
		{5, 0, true},
		{5, 1, true},  // 5/6 ≈ 0.83
		{5, 2, false}, // 5/7 ≈ 0.71
		{1, 0, false}, // below MinPos
		{2, 0, true},
	}
	for _, c := range cases {
		if got := s.IsGood(c.pos, c.neg); got != c.want {
			t.Errorf("IsGood(%d, %d) = %v, want %v", c.pos, c.neg, got, c.want)
		}
	}
}

func TestEvaluatorCoverageBruteForce(t *testing.T) {
	fx := newFixture(t)
	rule := logic.MustParseClause("active(M) :- bondx(M, A, B), atm(M, B, oxygen).")
	pos, neg := fx.ev.Coverage(&rule, nil, nil)
	// Brute force: every example tested directly.
	for i, e := range fx.ex.Pos {
		want := fx.m.CoversExample(&rule, e)
		if pos.Get(i) != want {
			t.Errorf("pos[%d] coverage mismatch", i)
		}
	}
	for i, e := range fx.ex.Neg {
		want := fx.m.CoversExample(&rule, e)
		if neg.Get(i) != want {
			t.Errorf("neg[%d] coverage mismatch", i)
		}
	}
	if pos.Count() != 4 || neg.Count() != 0 {
		t.Fatalf("target rule coverage: pos=%d neg=%d, want 4/0", pos.Count(), neg.Count())
	}
}

func TestEvaluatorCandidateMaskRestricts(t *testing.T) {
	fx := newFixture(t)
	rule := logic.MustParseClause("active(M) :- atm(M, A, oxygen).")
	mask := NewBitset(4)
	mask.Set(1)
	pos, _ := fx.ev.Coverage(&rule, mask, NewBitset(4))
	if pos.Count() != 1 || !pos.Get(1) {
		t.Fatalf("masked coverage: %v", pos)
	}
}

func TestEvaluatorSkipsRetracted(t *testing.T) {
	fx := newFixture(t)
	covered := NewBitset(4)
	covered.Set(0)
	fx.ex.RetractPos(covered)
	rule := logic.MustParseClause("active(M) :- atm(M, A, oxygen).")
	pos, _ := fx.ev.Coverage(&rule, nil, nil)
	if pos.Get(0) {
		t.Fatal("retracted example still counted")
	}
	if pos.Count() != 3 {
		t.Fatalf("coverage after retraction = %d, want 3", pos.Count())
	}
}

func TestLearnRuleFindsTarget(t *testing.T) {
	fx := newFixture(t)
	res := LearnRule(fx.ev, fx.bot, nil, Settings{MaxClauseLen: 3, MinPrec: 0.9})
	best := res.Best()
	if best == nil {
		t.Fatal("no good rule found")
	}
	if best.Pos != 4 || best.Neg != 0 {
		clause := best.Materialize(fx.bot)
		t.Fatalf("best rule covers %d/%d, want 4/0: %s", best.Pos, best.Neg, clause.String())
	}
	// The found rule must involve oxygen (the discriminating element).
	clause := best.Materialize(fx.bot)
	if s := clause.String(); !strings.Contains(s, "oxygen") {
		t.Fatalf("best rule does not mention oxygen: %s", s)
	}
}

func TestLearnRuleRespectsW(t *testing.T) {
	fx := newFixture(t)
	unlimited := LearnRule(fx.ev, fx.bot, nil, Settings{MaxClauseLen: 3, MinPrec: 0.75})
	if len(unlimited.Good) < 2 {
		t.Skipf("fixture yields %d good rules; widen fixture", len(unlimited.Good))
	}
	limited := LearnRule(fx.ev, fx.bot, nil, Settings{MaxClauseLen: 3, MinPrec: 0.75, W: 1})
	if len(limited.Good) != 1 {
		t.Fatalf("W=1 returned %d rules", len(limited.Good))
	}
	// The retained rule is the best one.
	if limited.Good[0].Score != unlimited.Good[0].Score {
		t.Fatalf("W=1 kept score %v, unlimited best %v", limited.Good[0].Score, unlimited.Good[0].Score)
	}
}

func TestLearnRuleNodesLimit(t *testing.T) {
	fx := newFixture(t)
	res := LearnRule(fx.ev, fx.bot, nil, Settings{NodesLimit: 3})
	if res.Generated > 3 {
		t.Fatalf("Generated = %d beyond NodesLimit", res.Generated)
	}
	if !res.ExhaustedNodes {
		t.Fatal("ExhaustedNodes not reported")
	}
}

func TestLearnRuleMaxClauseLen(t *testing.T) {
	fx := newFixture(t)
	res := LearnRule(fx.ev, fx.bot, nil, Settings{MaxClauseLen: 1, MinPrec: 0.5})
	for _, g := range res.Good {
		if len(g.Indices) > 1 {
			t.Fatalf("rule longer than MaxClauseLen: %v", g.Indices)
		}
	}
}

func TestLearnRuleSeedsRetained(t *testing.T) {
	fx := newFixture(t)
	// Seed with an arbitrary single-literal rule; it must appear in Good
	// even if poor, per Fig. 7 (Good = S).
	seed := []int32{0}
	res := LearnRule(fx.ev, fx.bot, [][]int32{seed}, Settings{MaxClauseLen: 3, MinPrec: 0.99, MinPos: 4})
	found := false
	for _, g := range res.Good {
		if equalIndices(g.Indices, seed) {
			found = true
		}
	}
	if !found {
		t.Fatal("seed rule dropped from Good")
	}
}

func TestLearnRuleSeededSearchRefinesSeeds(t *testing.T) {
	fx := newFixture(t)
	// Stage 1: limited search from scratch.
	first := LearnRule(fx.ev, fx.bot, nil, Settings{MaxClauseLen: 2, MinPrec: 0.75, W: 3})
	if len(first.Good) == 0 {
		t.Fatal("stage 1 found nothing")
	}
	var seeds [][]int32
	for _, g := range first.Good {
		seeds = append(seeds, g.Indices)
	}
	// Stage 2: seeded continuation must do at least as well.
	second := LearnRule(fx.ev, fx.bot, seeds, Settings{MaxClauseLen: 3, MinPrec: 0.75, W: 3})
	if len(second.Good) == 0 {
		t.Fatal("stage 2 found nothing")
	}
	if second.Good[0].Score < first.Good[0].Score {
		t.Fatalf("seeded search regressed: %v < %v", second.Good[0].Score, first.Good[0].Score)
	}
}

func TestLearnRuleInvalidSeedsIgnored(t *testing.T) {
	fx := newFixture(t)
	res := LearnRule(fx.ev, fx.bot, [][]int32{{9999}}, Settings{})
	for _, g := range res.Good {
		for _, ix := range g.Indices {
			if int(ix) >= len(fx.bot.Lits) {
				t.Fatal("invalid index leaked into results")
			}
		}
	}
	_ = res
}

func TestLearnRuleDeterministic(t *testing.T) {
	fx1 := newFixture(t)
	fx2 := newFixture(t)
	r1 := LearnRule(fx1.ev, fx1.bot, nil, Settings{MaxClauseLen: 3, MinPrec: 0.75})
	r2 := LearnRule(fx2.ev, fx2.bot, nil, Settings{MaxClauseLen: 3, MinPrec: 0.75})
	if len(r1.Good) != len(r2.Good) {
		t.Fatalf("different good counts: %d vs %d", len(r1.Good), len(r2.Good))
	}
	for i := range r1.Good {
		if !equalIndices(r1.Good[i].Indices, r2.Good[i].Indices) {
			t.Fatalf("rule %d differs between runs", i)
		}
	}
}

func TestChildCoverageSubsetOfParent(t *testing.T) {
	fx := newFixture(t)
	// Evaluate a rule and one of its refinements directly; the refinement's
	// coverage must be a subset (θ-subsumption anti-monotonicity).
	parent := fx.bot.Materialize([]int32{0})
	for j := 1; j < len(fx.bot.Lits) && j < 6; j++ {
		child := fx.bot.Materialize([]int32{0, int32(j)})
		pPos, pNeg := fx.ev.Coverage(&parent, nil, nil)
		cPos, cNeg := fx.ev.Coverage(&child, nil, nil)
		cPosOnly := cPos.Clone()
		cPosOnly.AndNotWith(pPos)
		cNegOnly := cNeg.Clone()
		cNegOnly.AndNotWith(pNeg)
		if !cPosOnly.Empty() || !cNegOnly.Empty() {
			t.Fatalf("refinement %d covers examples its parent does not", j)
		}
	}
}

func TestTheoryCovers(t *testing.T) {
	fx := newFixture(t)
	theory := []logic.Clause{
		logic.MustParseClause("active(M) :- atm(M, A, sulfur)."),
		logic.MustParseClause("active(M) :- atm(M, A, oxygen)."),
	}
	if !TheoryCovers(fx.m, theory, logic.MustParseTerm("active(m1)")) {
		t.Fatal("theory should cover m1 via oxygen rule")
	}
	if TheoryCovers(fx.m, theory, logic.MustParseTerm("active(m5)")) {
		t.Fatal("theory should not cover m5")
	}
	if TheoryCovers(fx.m, nil, logic.MustParseTerm("active(m1)")) {
		t.Fatal("empty theory covers nothing")
	}
}
