package search

import (
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/logic"
	"repro/internal/solve"
)

// parallelThreshold is the minimum number of coverage tests in one call that
// justifies fanning out to goroutines; below it the synchronization overhead
// dominates and the call runs on a single shard machine. The result is
// bit-for-bit identical either way.
const parallelThreshold = 64

// ParallelEvaluator is a FullCoverer that shards coverage testing across
// multiple goroutines. Each shard owns a private solve.Machine over the
// shared KB (a populated KB is safe for concurrent readers); a shard tests
// the examples of every 64-bit mask word congruent to its id, writing
// results into disjoint words of the output bitsets, so the merged result is
// bit-for-bit identical to the serial Evaluator's and requires no locking.
//
// Work assignment depends only on the mask length and the shard count, so
// per-machine inference totals — and therefore OwnInferences and the virtual
// clocks driven by it — are deterministic across runs.
type ParallelEvaluator struct {
	Ex       *Examples
	machines []*solve.Machine

	scratchPos Bitset // materialized positive test mask
	fullPos    Bitset // cached all-ones mask over positives
	fullNeg    Bitset // cached all-ones mask over negatives
}

var _ FullCoverer = (*ParallelEvaluator)(nil)

// CoverWorkers resolves a coverage-parallelism knob to a shard count:
// negative selects GOMAXPROCS, anything else passes through.
func CoverWorkers(n int) int {
	if n < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// NewFullCoverer selects the coverage evaluator for a learner: a serial
// Evaluator on the caller's machine m when parallelism resolves to ≤1, or a
// ParallelEvaluator with that many shards over m's KB. This is the single
// home of the serial-vs-parallel selection rule shared by the sequential
// learner and the p²-mdie workers.
func NewFullCoverer(m *solve.Machine, ex *Examples, budget solve.Budget, parallelism int) FullCoverer {
	if w := CoverWorkers(parallelism); w > 1 {
		return NewParallelEvaluator(m.KB(), ex, budget, w)
	}
	return NewEvaluator(m, ex)
}

// NewParallelEvaluator builds an evaluator with the given number of shard
// workers over a shared KB; workers ≤ 0 selects GOMAXPROCS.
func NewParallelEvaluator(kb *solve.KB, ex *Examples, budget solve.Budget, workers int) *ParallelEvaluator {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	pe := &ParallelEvaluator{Ex: ex, machines: make([]*solve.Machine, workers)}
	for i := range pe.machines {
		pe.machines[i] = solve.NewMachine(kb, budget)
	}
	return pe
}

// Workers reports the shard count.
func (pe *ParallelEvaluator) Workers() int { return len(pe.machines) }

// PosLen returns the positive example count.
func (pe *ParallelEvaluator) PosLen() int { return len(pe.Ex.Pos) }

// NegLen returns the negative example count.
func (pe *ParallelEvaluator) NegLen() int { return len(pe.Ex.Neg) }

// OwnInferences sums the SLD work across all shard machines.
func (pe *ParallelEvaluator) OwnInferences() int64 {
	var n int64
	for _, m := range pe.machines {
		n += m.TotalInferences()
	}
	return n
}

// CutoffQueries sums budget-truncated queries across all shard machines.
func (pe *ParallelEvaluator) CutoffQueries() int64 {
	var n int64
	for _, m := range pe.machines {
		n += m.CutoffQueries()
	}
	return n
}

// Coverage returns bitsets of the alive positives and of the negatives that
// rule covers, exactly as the serial Evaluator does. Non-nil candidate masks
// restrict which examples are tested.
func (pe *ParallelEvaluator) Coverage(rule *logic.Clause, posCand, negCand Bitset) (pos, neg Bitset) {
	testPos := pe.Ex.PosAlive
	if posCand != nil {
		pe.scratchPos = IntersectInto(pe.scratchPos, posCand, pe.Ex.PosAlive)
		testPos = pe.scratchPos
	}
	testNeg := negCand
	if testNeg == nil {
		testNeg = pe.allNeg()
	}
	return pe.cover(rule, testPos, testNeg)
}

// CoverageFull evaluates rule over every positive — retracted or not — and
// every negative (see Evaluator.CoverageFull).
func (pe *ParallelEvaluator) CoverageFull(rule *logic.Clause) (pos, neg Bitset) {
	if len(pe.fullPos) == 0 && len(pe.Ex.Pos) > 0 {
		pe.fullPos = FullBitset(len(pe.Ex.Pos))
	}
	return pe.cover(rule, pe.fullPos, pe.allNeg())
}

func (pe *ParallelEvaluator) allNeg() Bitset {
	if len(pe.fullNeg) == 0 && len(pe.Ex.Neg) > 0 {
		pe.fullNeg = FullBitset(len(pe.Ex.Neg))
	}
	return pe.fullNeg
}

// cover evaluates the rule over the examples selected by the test masks.
func (pe *ParallelEvaluator) cover(rule *logic.Clause, testPos, testNeg Bitset) (pos, neg Bitset) {
	pos = NewBitset(len(pe.Ex.Pos))
	neg = NewBitset(len(pe.Ex.Neg))
	n := len(pe.machines)
	if n == 1 || testPos.Count()+testNeg.Count() < parallelThreshold {
		coverShard(pe.machines[0], rule, pe.Ex.Pos, testPos, pos, 0, 1)
		coverShard(pe.machines[0], rule, pe.Ex.Neg, testNeg, neg, 0, 1)
		return pos, neg
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func(w int) {
			defer wg.Done()
			coverShard(pe.machines[w], rule, pe.Ex.Pos, testPos, pos, w, n)
			coverShard(pe.machines[w], rule, pe.Ex.Neg, testNeg, neg, w, n)
		}(w)
	}
	wg.Wait()
	return pos, neg
}

// coverShard tests the examples under the mask words congruent to w modulo
// stride, writing hits into the same words of out. Striding whole words
// keeps shards' writes disjoint (no locking) and balances clustered masks.
func coverShard(m *solve.Machine, rule *logic.Clause, ex []logic.Term, mask, out Bitset, w, stride int) {
	for wi := w; wi < len(mask); wi += stride {
		word := mask[wi]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			if i := wi*64 + b; m.CoversExample(rule, ex[i]) {
				out[wi] |= 1 << b
			}
		}
	}
}
