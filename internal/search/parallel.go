package search

import (
	"math/bits"
	"runtime"
	"sync/atomic"

	"repro/internal/logic"
	"repro/internal/solve"
)

// parallelThreshold is the minimum number of coverage tests in one call that
// justifies waking the shard pool; below it the synchronization overhead
// dominates and the call runs on a single shard machine. The result is
// bit-for-bit identical either way. The threshold applies to a whole batch,
// so a frontier of many narrow-masked candidates still parallelizes even
// when each individual candidate falls below it.
const parallelThreshold = 64

// taskChunkFactor controls work granularity: a batch is split into roughly
// taskChunkFactor tasks per shard, so the atomic-cursor scheduler can
// rebalance when some chunks prove slower than others.
const taskChunkFactor = 8

// coverTask is one unit of pool work: test the examples under mask words
// [lo, hi) against rule, writing hits into the same words of out. Tasks own
// disjoint word ranges of their output bitsets, so no locking is needed and
// the merged result is bit-for-bit identical to a serial evaluation. The SLD
// work of a task is fixed by (rule, mask range) alone — independent of which
// shard machine runs it — so total inference accounting stays deterministic
// under dynamic scheduling.
type coverTask struct {
	rule   *logic.Clause
	ex     []logic.Term
	mask   Bitset
	out    Bitset
	lo, hi int
}

// ParallelEvaluator is a FullCoverer that shards coverage testing across a
// persistent pool of goroutines. The pool is started once at construction:
// each shard owns a private solve.Machine over the shared KB (a populated KB
// is safe for concurrent readers) and blocks on a wake channel between
// batches. A batch — one rule, or a whole search frontier via CoverageBatch —
// is split into (rule × word-range) tasks claimed from an atomic cursor, so
// the cost per batch is one pool wake/join instead of a goroutine spawn and
// WaitGroup barrier per rule.
//
// Which machine runs which task varies run to run, but a task's SLD work
// does not, so OwnInferences (the sum over shard machines) — and the virtual
// clocks driven by it — are deterministic across runs and identical to a
// serial evaluation of the same calls.
type ParallelEvaluator struct {
	Ex *Examples
	// pool owns the shard machines (solve.Pool's fixed shard view: shard w
	// exclusively owns machines[w]); machines caches pool.Machines().
	pool     *solve.Pool
	machines []*solve.Machine

	fullPos Bitset // cached all-ones mask over positives
	fullNeg Bitset // cached all-ones mask over negatives

	// scratchMasks holds materialized per-rule positive test masks
	// (candidate ∩ alive); reused across batches.
	scratchMasks []Bitset

	staged []coverTask // whole-bitset tasks, one or two per rule
	tasks  []coverTask // word-range chunks the pool drains
	cursor atomic.Int64

	statBatches int64         // batch evaluations issued
	statWakes   int64         // batches large enough to wake the pool
	wake        chan struct{} // one token per pool worker per batch; closed by Close
	done        chan struct{}
	closed      bool
}

var _ FullCoverer = (*ParallelEvaluator)(nil)
var _ BatchCoverer = (*ParallelEvaluator)(nil)

// CoverWorkers resolves a coverage-parallelism knob to a shard count:
// negative selects GOMAXPROCS, anything else passes through.
func CoverWorkers(n int) int {
	if n < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// NewFullCoverer selects the coverage evaluator for a learner: a serial
// Evaluator on the caller's machine m when parallelism resolves to ≤1, or a
// ParallelEvaluator with that many shards over m's KB. This is the single
// home of the serial-vs-parallel selection rule shared by the sequential
// learner and the p²-mdie workers. Callers own the result and must Close it
// when done (a no-op for the serial evaluator).
func NewFullCoverer(m *solve.Machine, ex *Examples, budget solve.Budget, parallelism int) FullCoverer {
	if w := CoverWorkers(parallelism); w > 1 {
		pe := NewParallelEvaluator(m.KB(), ex, budget, w)
		// The shards inherit the seed machine's engine choice so an
		// interpreter-pinned run stays interpreter-pinned end to end.
		pe.SetNoVM(m.NoVM())
		return pe
	}
	return NewEvaluator(m, ex)
}

// NewParallelEvaluator builds an evaluator with the given number of shard
// workers over a shared KB; workers ≤ 0 selects GOMAXPROCS. The pool threads
// are started immediately; Close stops them.
func NewParallelEvaluator(kb *solve.KB, ex *Examples, budget solve.Budget, workers int) *ParallelEvaluator {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	pool := solve.NewPool(kb, budget, workers)
	pe := &ParallelEvaluator{Ex: ex, pool: pool, machines: pool.Machines()}
	if workers > 1 {
		// The caller's goroutine drains the cursor with machines[0]; pool
		// goroutines own machines[1..workers-1].
		pe.wake = make(chan struct{})
		pe.done = make(chan struct{})
		for w := 1; w < workers; w++ {
			go pe.poolWorker(w)
		}
	}
	return pe
}

// poolWorker is one persistent shard goroutine: it sleeps on the wake
// channel, drains the task cursor with its private machine, reports on the
// done channel, and exits when Close closes the wake channel.
func (pe *ParallelEvaluator) poolWorker(w int) {
	m := pe.machines[w]
	for range pe.wake {
		pe.drain(m)
		pe.done <- struct{}{}
	}
}

// drain claims and runs tasks until the cursor passes the end of the batch.
func (pe *ParallelEvaluator) drain(m *solve.Machine) {
	n := int64(len(pe.tasks))
	for {
		i := pe.cursor.Add(1) - 1
		if i >= n {
			return
		}
		runCoverTask(m, &pe.tasks[i])
	}
}

// Close stops the persistent pool. The evaluator must not be used afterwards.
func (pe *ParallelEvaluator) Close() {
	if pe.closed {
		return
	}
	pe.closed = true
	if pe.wake != nil {
		close(pe.wake)
	}
}

// SetNoVM pins every shard machine to the interpreter (true) or the compiled
// VM (false). Call only between batches.
func (pe *ParallelEvaluator) SetNoVM(no bool) { pe.pool.SetNoVM(no) }

// Workers reports the shard count.
func (pe *ParallelEvaluator) Workers() int { return len(pe.machines) }

// Stats reports how many batch evaluations were issued and how many of them
// woke the pool (the rest ran on one shard below parallelThreshold). One
// batched search node — however many candidates it expands — costs at most
// one wake.
func (pe *ParallelEvaluator) Stats() (batches, wakes int64) {
	return pe.statBatches, pe.statWakes
}

// PosLen returns the positive example count.
func (pe *ParallelEvaluator) PosLen() int { return len(pe.Ex.Pos) }

// NegLen returns the negative example count.
func (pe *ParallelEvaluator) NegLen() int { return len(pe.Ex.Neg) }

// OwnInferences sums the SLD work across all shard machines.
func (pe *ParallelEvaluator) OwnInferences() int64 { return pe.pool.TotalInferences() }

// CutoffQueries sums budget-truncated queries across all shard machines.
func (pe *ParallelEvaluator) CutoffQueries() int64 { return pe.pool.CutoffQueries() }

// Coverage returns bitsets of the alive positives and of the negatives that
// rule covers, exactly as the serial Evaluator does. Non-nil candidate masks
// restrict which examples are tested. Single rules are staged directly —
// no batch slices — so the per-candidate path allocates only its result
// bitsets.
func (pe *ParallelEvaluator) Coverage(rule *logic.Clause, posCand, negCand Bitset) (pos, neg Bitset) {
	testPos := pe.Ex.PosAlive
	if posCand != nil {
		buf := IntersectInto(pe.scratchMask(0), posCand, pe.Ex.PosAlive)
		pe.scratchMasks[0] = buf
		testPos = buf
	}
	testNeg := negCand
	if testNeg == nil {
		testNeg = pe.allNeg()
	}
	pos = NewBitset(len(pe.Ex.Pos))
	neg = NewBitset(len(pe.Ex.Neg))
	pe.staged = pe.staged[:0]
	pe.stageRule(rule, testPos, testNeg, pos, neg)
	pe.runStagedTasks(testPos.Count() + testNeg.Count())
	return pos, neg
}

// CoverageBatch evaluates a whole frontier of rules in one pool
// synchronisation: per-rule test masks are materialized, the batch is cut
// into (rule × word-range) tasks, the pool is woken once, and the caller's
// goroutine drains the cursor alongside the shard goroutines.
func (pe *ParallelEvaluator) CoverageBatch(rules []*logic.Clause, posCands, negCands []Bitset) []CoverResult {
	out := make([]CoverResult, len(rules))
	if len(rules) == 0 {
		return out
	}
	pe.staged = pe.staged[:0]
	tests := 0
	aliveCount := -1
	var lastCand, lastMask Bitset
	lastCount := 0
	var lastNegCand Bitset
	lastNegCount := 0
	for i, rule := range rules {
		var posCand, negCand Bitset
		if posCands != nil {
			posCand = posCands[i]
		}
		if negCands != nil {
			negCand = negCands[i]
		}
		testPos := pe.Ex.PosAlive
		nPos := 0
		if posCand != nil {
			// Frontier batches typically share one parent mask across every
			// rule; materialize (and count) candidate ∩ alive once per
			// distinct mask.
			if sameBitset(posCand, lastCand) {
				testPos = lastMask
				nPos = lastCount
			} else {
				buf := IntersectInto(pe.scratchMask(i), posCand, pe.Ex.PosAlive)
				pe.scratchMasks[i] = buf
				testPos = buf
				lastCand, lastMask = posCand, buf
				lastCount = buf.Count()
				nPos = lastCount
			}
		} else {
			if aliveCount < 0 {
				aliveCount = pe.Ex.PosAlive.Count()
			}
			nPos = aliveCount
		}
		testNeg := negCand
		nNeg := 0
		switch {
		case testNeg == nil:
			testNeg = pe.allNeg()
			nNeg = len(pe.Ex.Neg)
		case sameBitset(testNeg, lastNegCand):
			// Shared parent negCov across a frontier: count it once.
			nNeg = lastNegCount
		default:
			nNeg = testNeg.Count()
			lastNegCand, lastNegCount = testNeg, nNeg
		}
		out[i].Pos = NewBitset(len(pe.Ex.Pos))
		out[i].Neg = NewBitset(len(pe.Ex.Neg))
		tests += nPos + nNeg
		pe.stageRule(rule, testPos, testNeg, out[i].Pos, out[i].Neg)
	}
	pe.runStagedTasks(tests)
	return out
}

// CoverageFull evaluates rule over every positive — retracted or not — and
// every negative (see Evaluator.CoverageFull), staged directly like
// Coverage.
func (pe *ParallelEvaluator) CoverageFull(rule *logic.Clause) (pos, neg Bitset) {
	if len(pe.fullPos) == 0 && len(pe.Ex.Pos) > 0 {
		pe.fullPos = FullBitset(len(pe.Ex.Pos))
	}
	pos = NewBitset(len(pe.Ex.Pos))
	neg = NewBitset(len(pe.Ex.Neg))
	pe.staged = pe.staged[:0]
	pe.stageRule(rule, pe.fullPos, pe.allNeg(), pos, neg)
	pe.runStagedTasks(len(pe.Ex.Pos) + len(pe.Ex.Neg))
	return pos, neg
}

// CoverageFullBatch evaluates a rules bag over every positive and negative
// in one pool synchronisation.
func (pe *ParallelEvaluator) CoverageFullBatch(rules []*logic.Clause) []CoverResult {
	out := make([]CoverResult, len(rules))
	if len(rules) == 0 {
		return out
	}
	if len(pe.fullPos) == 0 && len(pe.Ex.Pos) > 0 {
		pe.fullPos = FullBitset(len(pe.Ex.Pos))
	}
	pe.staged = pe.staged[:0]
	tests := 0
	for i, rule := range rules {
		out[i].Pos = NewBitset(len(pe.Ex.Pos))
		out[i].Neg = NewBitset(len(pe.Ex.Neg))
		tests += len(pe.Ex.Pos) + len(pe.Ex.Neg)
		pe.stageRule(rule, pe.fullPos, pe.allNeg(), out[i].Pos, out[i].Neg)
	}
	pe.runStagedTasks(tests)
	return out
}

func (pe *ParallelEvaluator) allNeg() Bitset {
	if len(pe.fullNeg) == 0 && len(pe.Ex.Neg) > 0 {
		pe.fullNeg = FullBitset(len(pe.Ex.Neg))
	}
	return pe.fullNeg
}

// scratchMask returns the i-th reusable mask buffer, growing the pool of
// buffers as needed.
func (pe *ParallelEvaluator) scratchMask(i int) Bitset {
	for len(pe.scratchMasks) <= i {
		pe.scratchMasks = append(pe.scratchMasks, nil)
	}
	return pe.scratchMasks[i]
}

// sameBitset reports whether two bitsets share the same backing array (the
// cheap identity check batching exploits to materialize a shared parent mask
// only once).
func sameBitset(a, b Bitset) bool {
	return len(a) > 0 && len(b) == len(a) && &a[0] == &b[0]
}

// stageRule appends the tasks for one rule's positive and negative sides.
// Word ranges are chunked later, at runStagedTasks time, when the batch's
// total size is known.
func (pe *ParallelEvaluator) stageRule(rule *logic.Clause, testPos, testNeg, pos, neg Bitset) {
	if len(testPos) > 0 {
		pe.staged = append(pe.staged, coverTask{rule: rule, ex: pe.Ex.Pos, mask: testPos, out: pos, lo: 0, hi: len(testPos)})
	}
	if len(testNeg) > 0 {
		pe.staged = append(pe.staged, coverTask{rule: rule, ex: pe.Ex.Neg, mask: testNeg, out: neg, lo: 0, hi: len(testNeg)})
	}
}

// runStagedTasks executes the staged batch: serially on machines[0] when the
// batch is too small (or the evaluator has a single shard), otherwise split
// into word-range chunks and drained by the pool plus the caller — one wake
// and one join for the whole batch.
func (pe *ParallelEvaluator) runStagedTasks(tests int) {
	pe.statBatches++
	n := len(pe.machines)
	if n == 1 || tests < parallelThreshold {
		for i := range pe.staged {
			runCoverTask(pe.machines[0], &pe.staged[i])
		}
		return
	}
	pe.statWakes++
	pe.chunkTasks()
	pe.cursor.Store(0)
	for w := 1; w < n; w++ {
		pe.wake <- struct{}{}
	}
	pe.drain(pe.machines[0])
	for w := 1; w < n; w++ {
		<-pe.done
	}
}

// chunkTasks splits staged whole-bitset tasks into word ranges of roughly
// taskChunkFactor chunks per shard, dropping ranges whose mask words are all
// zero. Chunking depends only on the batch shape and the shard count, never
// on scheduling, so the task list — and each task's SLD work — is
// deterministic.
func (pe *ParallelEvaluator) chunkTasks() {
	totalWords := 0
	for i := range pe.staged {
		totalWords += pe.staged[i].hi - pe.staged[i].lo
	}
	chunk := totalWords / (taskChunkFactor * len(pe.machines))
	if chunk < 1 {
		chunk = 1
	}
	pe.tasks = pe.tasks[:0]
	for i := range pe.staged {
		t := &pe.staged[i]
		for lo := t.lo; lo < t.hi; lo += chunk {
			hi := lo + chunk
			if hi > t.hi {
				hi = t.hi
			}
			if maskEmpty(t.mask, lo, hi) {
				continue
			}
			pe.tasks = append(pe.tasks, coverTask{rule: t.rule, ex: t.ex, mask: t.mask, out: t.out, lo: lo, hi: hi})
		}
	}
}

// maskEmpty reports whether mask words [lo, hi) are all zero.
func maskEmpty(mask Bitset, lo, hi int) bool {
	for i := lo; i < hi; i++ {
		if mask[i] != 0 {
			return false
		}
	}
	return true
}

// runCoverTask tests the examples under the task's mask words, writing hits
// into the same words of the task's output bitset. Tasks own disjoint word
// ranges, so writes never race.
func runCoverTask(m *solve.Machine, t *coverTask) {
	for wi := t.lo; wi < t.hi; wi++ {
		word := t.mask[wi]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			if i := wi*64 + b; m.CoversExample(t.rule, t.ex[i]) {
				t.out[wi] |= 1 << b
			}
		}
	}
}
