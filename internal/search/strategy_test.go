package search

import (
	"testing"
)

func TestParseStrategy(t *testing.T) {
	for _, name := range []string{"", "bfs", "bestfirst", "best-first"} {
		if _, err := ParseStrategy(name); err != nil {
			t.Errorf("ParseStrategy(%q): %v", name, err)
		}
	}
	if _, err := ParseStrategy("dfs"); err == nil {
		t.Error("unknown strategy accepted")
	}
	if StrategyBFS.String() != "bfs" || StrategyBestFirst.String() != "bestfirst" {
		t.Error("Strategy String values")
	}
}

func TestBestFirstFindsTarget(t *testing.T) {
	fx := newFixture(t)
	res := LearnRule(fx.ev, fx.bot, nil, Settings{
		MaxClauseLen: 3, MinPrec: 0.9, Strategy: StrategyBestFirst,
	})
	best := res.Best()
	if best == nil {
		t.Fatal("best-first found nothing")
	}
	if best.Pos != 4 || best.Neg != 0 {
		t.Fatalf("best-first best rule covers %d/%d, want 4/0", best.Pos, best.Neg)
	}
}

func TestBestFirstMatchesBFSOnExhaustiveSearch(t *testing.T) {
	// With no node limit pressure both strategies explore the same set, so
	// the best rule must coincide.
	fx1 := newFixture(t)
	fx2 := newFixture(t)
	bfs := LearnRule(fx1.ev, fx1.bot, nil, Settings{MaxClauseLen: 2, MinPrec: 0.9, NodesLimit: 100000})
	bf := LearnRule(fx2.ev, fx2.bot, nil, Settings{MaxClauseLen: 2, MinPrec: 0.9, NodesLimit: 100000, Strategy: StrategyBestFirst})
	if bfs.Generated != bf.Generated {
		t.Fatalf("exhaustive searches generated different counts: %d vs %d", bfs.Generated, bf.Generated)
	}
	if bfs.Best().Score != bf.Best().Score {
		t.Fatalf("best scores differ: %v vs %v", bfs.Best().Score, bf.Best().Score)
	}
}

func TestBestFirstDeterministic(t *testing.T) {
	fx1 := newFixture(t)
	fx2 := newFixture(t)
	st := Settings{MaxClauseLen: 3, MinPrec: 0.75, NodesLimit: 40, Strategy: StrategyBestFirst}
	r1 := LearnRule(fx1.ev, fx1.bot, nil, st)
	r2 := LearnRule(fx2.ev, fx2.bot, nil, st)
	if len(r1.Good) != len(r2.Good) {
		t.Fatalf("nondeterministic good counts: %d vs %d", len(r1.Good), len(r2.Good))
	}
	for i := range r1.Good {
		if !equalIndices(r1.Good[i].Indices, r2.Good[i].Indices) {
			t.Fatalf("rule %d differs between runs", i)
		}
	}
}

// Under a tight node budget, best-first should reach a rule at least as
// good as breadth-first on this fixture (it expands promising nodes first).
func TestBestFirstAtLeastAsGoodUnderBudget(t *testing.T) {
	fx1 := newFixture(t)
	fx2 := newFixture(t)
	budget := Settings{MaxClauseLen: 3, MinPrec: 0.9, NodesLimit: 25}
	bfs := LearnRule(fx1.ev, fx1.bot, nil, budget)
	budget.Strategy = StrategyBestFirst
	bf := LearnRule(fx2.ev, fx2.bot, nil, budget)
	scoreOf := func(r *Result) float64 {
		if r.Best() == nil {
			return -1e18
		}
		return r.Best().Score
	}
	if scoreOf(bf) < scoreOf(bfs) {
		t.Fatalf("best-first (%v) worse than BFS (%v) under budget", scoreOf(bf), scoreOf(bfs))
	}
}
