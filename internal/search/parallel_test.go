package search

import (
	"testing"

	"repro/internal/solve"
)

func TestParallelEvaluatorMatchesSerial(t *testing.T) {
	fx := newFixture(t)
	subsets := [][]int32{nil, {0}, {1}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}}
	for _, workers := range []int{1, 2, 3, 8} {
		pe := NewParallelEvaluator(fx.kb, fx.ex, solve.DefaultBudget, workers)
		defer pe.Close()
		if pe.Workers() != workers {
			t.Fatalf("workers = %d, want %d", pe.Workers(), workers)
		}
		for _, ix := range subsets {
			if !validIndices(ix, len(fx.bot.Lits)) {
				continue
			}
			rule := fx.bot.Materialize(ix)

			wantPos, wantNeg := fx.ev.Coverage(&rule, nil, nil)
			gotPos, gotNeg := pe.Coverage(&rule, nil, nil)
			assertSameBits(t, "pos", wantPos, gotPos)
			assertSameBits(t, "neg", wantNeg, gotNeg)

			// Candidate-masked evaluation must agree too.
			gotPos2, gotNeg2 := pe.Coverage(&rule, wantPos, wantNeg)
			wantPos2, wantNeg2 := fx.ev.Coverage(&rule, wantPos, wantNeg)
			assertSameBits(t, "pos-masked", wantPos2, gotPos2)
			assertSameBits(t, "neg-masked", wantNeg2, gotNeg2)

			fullPosW, fullNegW := fx.ev.CoverageFull(&rule)
			fullPosG, fullNegG := pe.CoverageFull(&rule)
			assertSameBits(t, "pos-full", fullPosW, fullPosG)
			assertSameBits(t, "neg-full", fullNegW, fullNegG)
		}
	}
}

func TestParallelEvaluatorRespectsAliveMask(t *testing.T) {
	fx := newFixture(t)
	pe := NewParallelEvaluator(fx.kb, fx.ex, solve.DefaultBudget, 3)
	defer pe.Close()
	rule := fx.bot.Materialize([]int32{0, 1, 2})
	// Retract half the positives; Coverage must honor the alive mask while
	// CoverageFull ignores it.
	retract := NewBitset(len(fx.ex.Pos))
	retract.Set(0)
	retract.Set(2)
	fx.ex.RetractPos(retract)
	wantPos, _ := fx.ev.Coverage(&rule, nil, nil)
	gotPos, _ := pe.Coverage(&rule, nil, nil)
	assertSameBits(t, "pos-after-retract", wantPos, gotPos)
	if gotPos.Get(0) || gotPos.Get(2) {
		t.Fatal("retracted positives reported as covered")
	}
	fullW, _ := fx.ev.CoverageFull(&rule)
	fullG, _ := pe.CoverageFull(&rule)
	assertSameBits(t, "full-after-retract", fullW, fullG)
	if !fullG.Get(0) {
		t.Fatal("CoverageFull must ignore the alive mask")
	}
}

func TestParallelEvaluatorDeterministicAccounting(t *testing.T) {
	run := func() int64 {
		fx := newFixture(t)
		pe := NewParallelEvaluator(fx.kb, fx.ex, solve.DefaultBudget, 4)
		defer pe.Close()
		for _, ix := range [][]int32{nil, {0}, {0, 1}, {0, 1, 2}} {
			rule := fx.bot.Materialize(ix)
			pe.Coverage(&rule, nil, nil)
			pe.CoverageFull(&rule)
		}
		return pe.OwnInferences()
	}
	a, b := run(), run()
	if a == 0 {
		t.Fatal("no inferences recorded")
	}
	if a != b {
		t.Fatalf("inference accounting not deterministic: %d vs %d", a, b)
	}
}

// TestLearnRuleSameWithParallelCoverer runs the full rule search with both
// coverers and requires identical outcomes.
func TestLearnRuleSameWithParallelCoverer(t *testing.T) {
	fx := newFixture(t)
	st := Settings{MaxClauseLen: 3, MinPrec: 0.9}
	serial := LearnRule(fx.ev, fx.bot, nil, st)
	pe := NewParallelEvaluator(fx.kb, fx.ex, solve.DefaultBudget, 4)
	defer pe.Close()
	par := LearnRule(pe, fx.bot, nil, st)
	if serial.Generated != par.Generated {
		t.Fatalf("generated: serial %d, parallel %d", serial.Generated, par.Generated)
	}
	if len(serial.Good) != len(par.Good) {
		t.Fatalf("good rules: serial %d, parallel %d", len(serial.Good), len(par.Good))
	}
	for i := range serial.Good {
		sc := serial.Good[i].Materialize(fx.bot).Canonical()
		pc := par.Good[i].Materialize(fx.bot).Canonical()
		if sc.String() != pc.String() {
			t.Fatalf("good[%d]: serial %s, parallel %s", i, sc, pc)
		}
		assertSameBits(t, "good-pos", serial.Good[i].PosCover(), par.Good[i].PosCover())
	}
}

// TestCoverageSharesCompiledProgram pins the compile-once contract at the
// search layer: the fixture machine, the serial evaluator and every
// ParallelEvaluator shard prove against one KB, so across all of them the
// bytecode compiler runs exactly once per KB load.
func TestCoverageSharesCompiledProgram(t *testing.T) {
	fx := newFixture(t)
	if solve.NewMachine(fx.kb, solve.DefaultBudget).NoVM() {
		t.Skip("ILP_NOVM set; nothing compiles")
	}
	rule := fx.bot.Materialize([]int32{0, 1, 2})
	fx.ev.Coverage(&rule, nil, nil)
	for _, workers := range []int{2, 4, 8} {
		pe := NewParallelEvaluator(fx.kb, fx.ex, solve.DefaultBudget, workers)
		pe.Coverage(&rule, nil, nil)
		pe.CoverageFull(&rule)
		pe.Close()
	}
	fc := NewFullCoverer(fx.m, fx.ex, solve.DefaultBudget, 4)
	fc.Coverage(&rule, nil, nil)
	fc.Close()
	if n := fx.kb.Compilations(); n != 1 {
		t.Fatalf("shared KB compiled %d times across coverers, want 1", n)
	}
}

func assertSameBits(t *testing.T, what string, want, got Bitset) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", what, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: word %d differs: %064b vs %064b", what, i, want[i], got[i])
		}
	}
}
