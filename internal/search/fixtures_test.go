package search

import (
	"fmt"
	"testing"

	"repro/internal/bottom"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/solve"
)

// The shared fixture is a tiny molecular task: a molecule is active iff it
// contains a bond to an oxygen atom. Molecules m1..m4 are positive,
// m5..m8 negative.
const fixtureBK = `
atm(m1, a11, carbon). atm(m1, a12, oxygen).
bondx(m1, a11, a12).
atm(m2, a21, nitrogen). atm(m2, a22, oxygen). atm(m2, a23, carbon).
bondx(m2, a21, a22). bondx(m2, a21, a23).
atm(m3, a31, carbon). atm(m3, a32, oxygen).
bondx(m3, a31, a32).
atm(m4, a41, sulfur). atm(m4, a42, oxygen). atm(m4, a43, carbon).
bondx(m4, a43, a42).
atm(m5, a51, carbon). atm(m5, a52, carbon).
bondx(m5, a51, a52).
atm(m6, a61, nitrogen). atm(m6, a62, carbon).
bondx(m6, a61, a62).
atm(m7, a71, sulfur). atm(m7, a72, carbon).
bondx(m7, a71, a72).
atm(m8, a81, carbon). atm(m8, a82, nitrogen).
bondx(m8, a81, a82).
`

const fixtureModes = `
modeh(1, active(+mol)).
modeb('*', atm(+mol, -atomid, #element)).
modeb('*', bondx(+mol, -atomid, -atomid)).
`

type fixture struct {
	kb  *solve.KB
	m   *solve.Machine
	ms  *mode.Set
	ex  *Examples
	ev  *Evaluator
	bot *bottom.Bottom
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	kb := solve.NewKB()
	if err := kb.AddSource(fixtureBK); err != nil {
		t.Fatal(err)
	}
	m := solve.NewMachine(kb, solve.DefaultBudget)
	var pos, neg []logic.Term
	for i := 1; i <= 4; i++ {
		pos = append(pos, logic.MustParseTerm(fmt.Sprintf("active(m%d)", i)))
	}
	for i := 5; i <= 8; i++ {
		neg = append(neg, logic.MustParseTerm(fmt.Sprintf("active(m%d)", i)))
	}
	ex := NewExamples(pos, neg)
	ms := mode.MustParseSet(fixtureModes)
	bot, err := bottom.Construct(m, ms, pos[0], bottom.Options{VarDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{kb: kb, m: m, ms: ms, ex: ex, ev: NewEvaluator(m, ex), bot: bot}
}
