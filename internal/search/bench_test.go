package search

import (
	"fmt"
	"testing"

	"repro/internal/logic"
	"repro/internal/solve"
)

func benchFixture(b *testing.B) *fixture {
	b.Helper()
	return newFixture(b)
}

func BenchmarkCoverageSmallRule(b *testing.B) {
	fx := benchFixture(b)
	rule := fx.bot.Materialize([]int32{0})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos, _ := fx.ev.Coverage(&rule, nil, nil)
		if pos.Empty() {
			b.Fatal("no coverage")
		}
	}
}

func BenchmarkLearnRuleFullSearch(b *testing.B) {
	fx := benchFixture(b)
	st := Settings{MaxClauseLen: 3, MinPrec: 0.9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := LearnRule(fx.ev, fx.bot, nil, st)
		if res.Best() == nil {
			b.Fatal("no rule found")
		}
	}
}

func BenchmarkLearnRuleSeeded(b *testing.B) {
	fx := benchFixture(b)
	st := Settings{MaxClauseLen: 3, MinPrec: 0.9, W: 5}
	first := LearnRule(fx.ev, fx.bot, nil, st)
	var seeds [][]int32
	for _, g := range first.Good {
		seeds = append(seeds, g.Indices)
	}
	if len(seeds) == 0 {
		b.Fatal("no seeds")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LearnRule(fx.ev, fx.bot, seeds, st)
	}
}

func BenchmarkBitsetOps(b *testing.B) {
	x := FullBitset(4096)
	y := NewBitset(4096)
	for i := 0; i < 4096; i += 3 {
		y.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.AndWith(y)
		if c.Count() == 0 {
			b.Fatal("empty intersection")
		}
	}
}

func BenchmarkCoverageFullSerial(b *testing.B) {
	fx := benchFixture(b)
	rule := fx.bot.Materialize([]int32{0, 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos, _ := fx.ev.CoverageFull(&rule)
		if pos.Empty() {
			b.Fatal("no coverage")
		}
	}
}

// benchWideExamples builds a molecular task large enough that sharding the
// example set matters: n molecules, alternating positive (oxygen-bonded)
// and negative.
func benchWideExamples(b *testing.B, n int) (*solve.KB, *Examples, logic.Clause) {
	b.Helper()
	kb := solve.NewKB()
	var pos, neg []logic.Term
	for i := 0; i < n; i++ {
		mol := fmt.Sprintf("w%d", i)
		second := "carbon"
		if i%2 == 0 {
			second = "oxygen"
		}
		kb.AddFact(logic.MustParseTerm(fmt.Sprintf("atm(%s, b%d1, carbon)", mol, i)))
		kb.AddFact(logic.MustParseTerm(fmt.Sprintf("atm(%s, b%d2, %s)", mol, i, second)))
		kb.AddFact(logic.MustParseTerm(fmt.Sprintf("bondx(%s, b%d1, b%d2)", mol, i, i)))
		ex := logic.MustParseTerm(fmt.Sprintf("active(%s)", mol))
		if i%2 == 0 {
			pos = append(pos, ex)
		} else {
			neg = append(neg, ex)
		}
	}
	rule := logic.MustParseClause("active(M) :- atm(M, A, carbon), bondx(M, A, B), atm(M, B, oxygen).")
	return kb, NewExamples(pos, neg), rule
}

func BenchmarkCoverageFullWideSerial(b *testing.B) {
	kb, ex, rule := benchWideExamples(b, 2048)
	m := solve.NewMachine(kb, solve.DefaultBudget)
	ev := NewEvaluator(m, ex)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos, _ := ev.CoverageFull(&rule)
		if pos.Empty() {
			b.Fatal("no coverage")
		}
	}
}

func BenchmarkCoverageFullWideParallel(b *testing.B) {
	kb, ex, rule := benchWideExamples(b, 2048)
	pe := NewParallelEvaluator(kb, ex, solve.DefaultBudget, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos, _ := pe.CoverageFull(&rule)
		if pos.Empty() {
			b.Fatal("no coverage")
		}
	}
}
