package search

import (
	"fmt"
	"testing"

	"repro/internal/bottom"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/solve"
)

func benchFixture(b *testing.B) *fixture {
	b.Helper()
	return newFixture(b)
}

func BenchmarkCoverageSmallRule(b *testing.B) {
	fx := benchFixture(b)
	rule := fx.bot.Materialize([]int32{0})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos, _ := fx.ev.Coverage(&rule, nil, nil)
		if pos.Empty() {
			b.Fatal("no coverage")
		}
	}
}

func BenchmarkLearnRuleFullSearch(b *testing.B) {
	fx := benchFixture(b)
	st := Settings{MaxClauseLen: 3, MinPrec: 0.9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := LearnRule(fx.ev, fx.bot, nil, st)
		if res.Best() == nil {
			b.Fatal("no rule found")
		}
	}
}

func BenchmarkLearnRuleSeeded(b *testing.B) {
	fx := benchFixture(b)
	st := Settings{MaxClauseLen: 3, MinPrec: 0.9, W: 5}
	first := LearnRule(fx.ev, fx.bot, nil, st)
	var seeds [][]int32
	for _, g := range first.Good {
		seeds = append(seeds, g.Indices)
	}
	if len(seeds) == 0 {
		b.Fatal("no seeds")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LearnRule(fx.ev, fx.bot, seeds, st)
	}
}

func BenchmarkBitsetOps(b *testing.B) {
	x := FullBitset(4096)
	y := NewBitset(4096)
	for i := 0; i < 4096; i += 3 {
		y.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.AndWith(y)
		if c.Count() == 0 {
			b.Fatal("empty intersection")
		}
	}
}

func BenchmarkCoverageFullSerial(b *testing.B) {
	fx := benchFixture(b)
	rule := fx.bot.Materialize([]int32{0, 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos, _ := fx.ev.CoverageFull(&rule)
		if pos.Empty() {
			b.Fatal("no coverage")
		}
	}
}

// benchWideExamples builds a molecular task large enough that sharding the
// example set matters: n molecules, alternating positive (oxygen-bonded)
// and negative.
func benchWideExamples(b testing.TB, n int) (*solve.KB, *Examples, logic.Clause) {
	b.Helper()
	kb := solve.NewKB()
	var pos, neg []logic.Term
	for i := 0; i < n; i++ {
		mol := fmt.Sprintf("w%d", i)
		second := "carbon"
		if i%2 == 0 {
			second = "oxygen"
		}
		kb.AddFact(logic.MustParseTerm(fmt.Sprintf("atm(%s, b%d1, carbon)", mol, i)))
		kb.AddFact(logic.MustParseTerm(fmt.Sprintf("atm(%s, b%d2, %s)", mol, i, second)))
		kb.AddFact(logic.MustParseTerm(fmt.Sprintf("bondx(%s, b%d1, b%d2)", mol, i, i)))
		ex := logic.MustParseTerm(fmt.Sprintf("active(%s)", mol))
		if i%2 == 0 {
			pos = append(pos, ex)
		} else {
			neg = append(neg, ex)
		}
	}
	rule := logic.MustParseClause("active(M) :- atm(M, A, carbon), bondx(M, A, B), atm(M, B, oxygen).")
	return kb, NewExamples(pos, neg), rule
}

func BenchmarkCoverageFullWideSerial(b *testing.B) {
	kb, ex, rule := benchWideExamples(b, 2048)
	m := solve.NewMachine(kb, solve.DefaultBudget)
	ev := NewEvaluator(m, ex)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos, _ := ev.CoverageFull(&rule)
		if pos.Empty() {
			b.Fatal("no coverage")
		}
	}
}

func BenchmarkCoverageFullWideParallel(b *testing.B) {
	kb, ex, rule := benchWideExamples(b, 2048)
	pe := NewParallelEvaluator(kb, ex, solve.DefaultBudget, 0)
	defer pe.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos, _ := pe.CoverageFull(&rule)
		if pos.Empty() {
			b.Fatal("no coverage")
		}
	}
}

// benchRichExamples builds a molecular task whose bottom clause is rich
// enough that LearnRule expands hundreds of candidates: n molecules of five
// atoms in a bond chain, positive iff some bond reaches an oxygen.
func benchRichExamples(b testing.TB, n int) (*solve.KB, *Examples, *bottom.Bottom) {
	b.Helper()
	elements := [...]string{"carbon", "nitrogen", "sulfur", "carbon", "hydrogen", "carbon", "phosphorus"}
	kb := solve.NewKB()
	var pos, neg []logic.Term
	for i := 0; i < n; i++ {
		mol := fmt.Sprintf("r%d", i)
		for a := 0; a < 5; a++ {
			el := elements[(i*5+a*3)%len(elements)]
			if a == 3 && i%2 == 0 {
				el = "oxygen"
			}
			kb.AddFact(logic.MustParseTerm(fmt.Sprintf("atm(%s, r%da%d, %s)", mol, i, a, el)))
		}
		for a := 0; a < 4; a++ {
			kb.AddFact(logic.MustParseTerm(fmt.Sprintf("bondx(%s, r%da%d, r%da%d)", mol, i, a, i, a+1)))
		}
		ex := logic.MustParseTerm(fmt.Sprintf("active(%s)", mol))
		if i%2 == 0 {
			pos = append(pos, ex)
		} else {
			neg = append(neg, ex)
		}
	}
	ex := NewExamples(pos, neg)
	m := solve.NewMachine(kb, solve.DefaultBudget)
	ms := mode.MustParseSet(fixtureModes)
	bot, err := bottom.Construct(m, ms, pos[0], bottom.Options{VarDepth: 2})
	if err != nil {
		b.Fatal(err)
	}
	return kb, ex, bot
}

// BenchmarkLearnRule is the end-to-end search benchmark the batch path is
// judged on: a full LearnRule over a wide example set, batched (one pool
// synchronisation per expanded node) versus per-candidate evaluation (one
// per generated rule), on the serial evaluator and on a 4-shard pool. The
// ns/node metric is search time per generated rule.
func BenchmarkLearnRule(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
		noBatch bool
	}{
		{"batched/serial", 0, false},
		{"percand/serial", 0, true},
		{"batched/pool4", 4, false},
		{"percand/pool4", 4, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			kb, ex, bot := benchRichExamples(b, 256)
			m := solve.NewMachine(kb, solve.DefaultBudget)
			var ev Coverer = NewEvaluator(m, ex)
			if bc.workers > 0 {
				pe := NewParallelEvaluator(kb, ex, solve.DefaultBudget, bc.workers)
				defer pe.Close()
				ev = pe
			}
			st := Settings{MaxClauseLen: 3, MinPrec: 0.9, NoBatchEval: bc.noBatch}
			generated := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := LearnRule(ev, bot, nil, st)
				if res.Best() == nil {
					b.Fatal("no rule found")
				}
				generated += res.Generated
			}
			b.StopTimer()
			if generated > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(generated), "ns/node")
			}
		})
	}
}
