package search

import (
	"testing"
)

func benchFixture(b *testing.B) *fixture {
	b.Helper()
	return newFixture(b)
}

func BenchmarkCoverageSmallRule(b *testing.B) {
	fx := benchFixture(b)
	rule := fx.bot.Materialize([]int32{0})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos, _ := fx.ev.Coverage(&rule, nil, nil)
		if pos.Empty() {
			b.Fatal("no coverage")
		}
	}
}

func BenchmarkLearnRuleFullSearch(b *testing.B) {
	fx := benchFixture(b)
	st := Settings{MaxClauseLen: 3, MinPrec: 0.9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := LearnRule(fx.ev, fx.bot, nil, st)
		if res.Best() == nil {
			b.Fatal("no rule found")
		}
	}
}

func BenchmarkLearnRuleSeeded(b *testing.B) {
	fx := benchFixture(b)
	st := Settings{MaxClauseLen: 3, MinPrec: 0.9, W: 5}
	first := LearnRule(fx.ev, fx.bot, nil, st)
	var seeds [][]int32
	for _, g := range first.Good {
		seeds = append(seeds, g.Indices)
	}
	if len(seeds) == 0 {
		b.Fatal("no seeds")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LearnRule(fx.ev, fx.bot, seeds, st)
	}
}

func BenchmarkBitsetOps(b *testing.B) {
	x := FullBitset(4096)
	y := NewBitset(4096)
	for i := 0; i < 4096; i += 3 {
		y.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.AndWith(y)
		if c.Count() == 0 {
			b.Fatal("empty intersection")
		}
	}
}
