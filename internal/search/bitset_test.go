package search

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if !b.Empty() {
		t.Fatal("fresh bitset not empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(128) {
		t.Fatal("unexpected bit set")
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Fatal("Clear failed")
	}
}

func TestFullBitset(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200} {
		b := FullBitset(n)
		if got := b.Count(); got != n {
			t.Fatalf("FullBitset(%d).Count() = %d", n, got)
		}
		if n > 0 && !b.Get(n-1) {
			t.Fatalf("FullBitset(%d) missing last bit", n)
		}
	}
}

func TestBitsetOps(t *testing.T) {
	a := NewBitset(100)
	b := NewBitset(100)
	a.Set(1)
	a.Set(50)
	a.Set(99)
	b.Set(50)
	b.Set(2)

	and := a.Clone()
	and.AndWith(b)
	if and.Count() != 1 || !and.Get(50) {
		t.Fatalf("AndWith: %v", and)
	}

	diff := a.Clone()
	diff.AndNotWith(b)
	if diff.Count() != 2 || diff.Get(50) {
		t.Fatalf("AndNotWith: %v", diff)
	}

	or := a.Clone()
	or.OrWith(b)
	if or.Count() != 4 {
		t.Fatalf("OrWith: %v", or)
	}
}

func TestBitsetForEachOrderAndStop(t *testing.T) {
	b := NewBitset(200)
	want := []int{3, 64, 65, 130, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: %v", got)
		}
	}
	count := 0
	b.ForEach(func(int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestQuickBitsetCountMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		b := NewBitset(n)
		ref := make(map[int]bool)
		for i := 0; i < 100; i++ {
			k := rng.Intn(n)
			if rng.Intn(2) == 0 {
				b.Set(k)
				ref[k] = true
			} else {
				b.Clear(k)
				delete(ref, k)
			}
		}
		if b.Count() != len(ref) {
			return false
		}
		ok := true
		b.ForEach(func(i int) bool {
			if !ref[i] {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExamplesRetraction(t *testing.T) {
	fx := newFixture(t)
	ex := fx.ex
	if ex.NumPos() != 4 || ex.NumNeg() != 4 || ex.NumPosAlive() != 4 {
		t.Fatalf("fixture counts: %s", ex)
	}
	covered := NewBitset(4)
	covered.Set(0)
	covered.Set(2)
	if got := ex.RetractPos(covered); got != 2 {
		t.Fatalf("RetractPos = %d, want 2", got)
	}
	if ex.NumPosAlive() != 2 {
		t.Fatalf("alive = %d, want 2", ex.NumPosAlive())
	}
	// Retracting again is a no-op.
	if got := ex.RetractPos(covered); got != 0 {
		t.Fatalf("second RetractPos = %d, want 0", got)
	}
	if got := ex.FirstAlivePos(); got != 1 {
		t.Fatalf("FirstAlivePos = %d, want 1", got)
	}
	if got := ex.AlivePosIndices(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("AlivePosIndices = %v", got)
	}
}

func TestExamplesClone(t *testing.T) {
	fx := newFixture(t)
	clone := fx.ex.Clone()
	covered := NewBitset(4)
	covered.Set(0)
	clone.RetractPos(covered)
	if fx.ex.NumPosAlive() != 4 {
		t.Fatal("clone retraction leaked to original")
	}
	if clone.NumPosAlive() != 3 {
		t.Fatal("clone retraction lost")
	}
}
