package search

import (
	"fmt"

	"repro/internal/logic"
)

// Examples holds the training examples visible to one learner (the whole set
// for the sequential algorithm, one partition for a pipeline worker).
// Positive examples are retracted by the covering loop via an alive mask so
// indices stay stable throughout a run; negatives are never retracted.
type Examples struct {
	Pos []logic.Term
	Neg []logic.Term
	// PosAlive marks positives not yet covered by the learned theory.
	PosAlive Bitset
}

// NewExamples builds an example store with all positives alive.
func NewExamples(pos, neg []logic.Term) *Examples {
	return &Examples{Pos: pos, Neg: neg, PosAlive: FullBitset(len(pos))}
}

// NumPos returns the total number of positive examples.
func (e *Examples) NumPos() int { return len(e.Pos) }

// NumNeg returns the total number of negative examples.
func (e *Examples) NumNeg() int { return len(e.Neg) }

// NumPosAlive returns the number of not-yet-covered positives.
func (e *Examples) NumPosAlive() int { return e.PosAlive.Count() }

// RetractPos marks the positives in covered as explained (removed from the
// remaining training set) and reports how many were newly retracted.
func (e *Examples) RetractPos(covered Bitset) int {
	before := e.PosAlive.Count()
	e.PosAlive.AndNotWith(covered)
	return before - e.PosAlive.Count()
}

// FirstAlivePos returns the index of the first alive positive, or -1.
func (e *Examples) FirstAlivePos() int {
	idx := -1
	e.PosAlive.ForEach(func(i int) bool {
		idx = i
		return false
	})
	return idx
}

// AlivePosIndices returns the indices of alive positives in order.
func (e *Examples) AlivePosIndices() []int {
	var out []int
	e.PosAlive.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Clone returns a deep copy (terms are immutable and shared).
func (e *Examples) Clone() *Examples {
	return &Examples{
		Pos:      append([]logic.Term(nil), e.Pos...),
		Neg:      append([]logic.Term(nil), e.Neg...),
		PosAlive: e.PosAlive.Clone(),
	}
}

func (e *Examples) String() string {
	return fmt.Sprintf("examples{pos: %d (%d alive), neg: %d}", e.NumPos(), e.NumPosAlive(), e.NumNeg())
}
