package logic

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the variants of a Term.
type Kind uint8

const (
	// Invalid is the zero Kind; it marks unbound slots in a Bindings store.
	Invalid Kind = iota
	// Var is a logic variable, identified by a small integer index.
	Var
	// Atom is a 0-arity constant symbol.
	Atom
	// Int is an integer constant (stored in Num).
	Int
	// Float is a floating-point constant (stored in Num).
	Float
	// Compound is a functor applied to one or more arguments.
	Compound
)

// Term is a first-order term. The zero value is an Invalid term.
//
// For Var terms, Sym holds the variable index. For Atom and Compound terms,
// Sym holds the interned functor name. Numeric constants live in Num; Int
// keeps integral semantics for printing and type checks but shares storage.
type Term struct {
	Kind Kind
	Sym  Symbol
	Num  float64
	Args []Term
}

// V returns a variable term with the given index.
func V(i int) Term { return Term{Kind: Var, Sym: Symbol(i)} }

// A returns an atom (0-arity constant) term.
func A(name string) Term { return Term{Kind: Atom, Sym: Intern(name)} }

// IntTerm returns an integer constant term.
func IntTerm(v int64) Term { return Term{Kind: Int, Num: float64(v)} }

// FloatTerm returns a floating-point constant term.
func FloatTerm(v float64) Term { return Term{Kind: Float, Num: v} }

// Comp returns a compound term functor(args...). With no arguments it
// degenerates to an atom.
func Comp(functor string, args ...Term) Term {
	if len(args) == 0 {
		return A(functor)
	}
	return Term{Kind: Compound, Sym: Intern(functor), Args: args}
}

// CompSym is Comp with an already-interned functor symbol.
func CompSym(functor Symbol, args ...Term) Term {
	if len(args) == 0 {
		return Term{Kind: Atom, Sym: functor}
	}
	return Term{Kind: Compound, Sym: functor, Args: args}
}

// VarIndex returns the variable index of a Var term.
func (t Term) VarIndex() int { return int(t.Sym) }

// IsCallable reports whether t can stand as a goal or fact head
// (an atom or compound term).
func (t Term) IsCallable() bool { return t.Kind == Atom || t.Kind == Compound }

// IsNumber reports whether t is an Int or Float constant.
func (t Term) IsNumber() bool { return t.Kind == Int || t.Kind == Float }

// IsGround reports whether t contains no variables.
func (t Term) IsGround() bool {
	switch t.Kind {
	case Var:
		return false
	case Compound:
		for i := range t.Args {
			if !t.Args[i].IsGround() {
				return false
			}
		}
	}
	return true
}

// Arity returns the number of arguments (0 for non-compound terms).
func (t Term) Arity() int { return len(t.Args) }

// PredKey identifies a predicate by functor symbol and arity.
type PredKey struct {
	Sym   Symbol
	Arity int
}

func (k PredKey) String() string { return k.Sym.Name() + "/" + strconv.Itoa(k.Arity) }

// Pred returns the predicate key of a callable term.
func (t Term) Pred() PredKey { return PredKey{Sym: t.Sym, Arity: len(t.Args)} }

// Equal reports structural equality of two terms (variables compare by index).
func Equal(a, b Term) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Var, Atom:
		return a.Sym == b.Sym
	case Int, Float:
		return a.Num == b.Num
	case Compound:
		if a.Sym != b.Sym || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !Equal(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	}
	return a.Kind == b.Kind
}

// MaxVar returns the largest variable index occurring in t, or -1 if none.
func (t Term) MaxVar() int {
	switch t.Kind {
	case Var:
		return int(t.Sym)
	case Compound:
		m := -1
		for i := range t.Args {
			if v := t.Args[i].MaxVar(); v > m {
				m = v
			}
		}
		return m
	}
	return -1
}

// CollectVars appends the indices of all variables in t to set (a map used as
// a set). It is used for input/output variable discipline in refinement.
func (t Term) CollectVars(set map[int]bool) {
	switch t.Kind {
	case Var:
		set[int(t.Sym)] = true
	case Compound:
		for i := range t.Args {
			t.Args[i].CollectVars(set)
		}
	}
}

// OffsetVars returns a copy of t with every variable index shifted by k.
// Terms without variables are returned as-is (no copy).
func (t Term) OffsetVars(k int) Term {
	if k == 0 {
		return t
	}
	switch t.Kind {
	case Var:
		return V(int(t.Sym) + k)
	case Compound:
		changed := false
		args := make([]Term, len(t.Args))
		for i := range t.Args {
			args[i] = t.Args[i].OffsetVars(k)
			if !Equal(args[i], t.Args[i]) {
				changed = true
			}
		}
		if !changed {
			return t
		}
		return Term{Kind: Compound, Sym: t.Sym, Args: args}
	}
	return t
}

// RenameVars returns a copy of t with variables renumbered through ren;
// variables absent from ren are assigned the next index, recorded in ren.
// next must point at the first free index.
func (t Term) RenameVars(ren map[int]int, next *int) Term {
	switch t.Kind {
	case Var:
		idx, ok := ren[int(t.Sym)]
		if !ok {
			idx = *next
			ren[int(t.Sym)] = idx
			*next++
		}
		return V(idx)
	case Compound:
		args := make([]Term, len(t.Args))
		for i := range t.Args {
			args[i] = t.Args[i].RenameVars(ren, next)
		}
		return Term{Kind: Compound, Sym: t.Sym, Args: args}
	}
	return t
}

// String renders t in Prolog-ish syntax. Variables print as A, B, ...,
// V26, V27, ... by index.
func (t Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func varName(i int) string {
	if i >= 0 && i < 26 {
		return string(rune('A' + i))
	}
	return "V" + strconv.Itoa(i)
}

func needsQuote(name string) bool {
	if name == "" {
		return true
	}
	// Symbolic operator atoms print bare.
	switch name {
	case "=", "\\=", "<", "=<", ">", ">=", "is", "+", "-", "#", "*", "/":
		return false
	}
	c := name[0]
	if c < 'a' || c > 'z' {
		return true
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return true
		}
	}
	return false
}

func writeAtomName(b *strings.Builder, name string) {
	if needsQuote(name) {
		b.WriteByte('\'')
		b.WriteString(strings.ReplaceAll(name, "'", "\\'"))
		b.WriteByte('\'')
		return
	}
	b.WriteString(name)
}

var infixOps = map[string]bool{
	"=": true, "\\=": true, "<": true, "=<": true, ">": true, ">=": true, "is": true,
}

func (t Term) write(b *strings.Builder) {
	switch t.Kind {
	case Invalid:
		b.WriteString("<invalid>")
	case Var:
		b.WriteString(varName(int(t.Sym)))
	case Atom:
		writeAtomName(b, t.Sym.Name())
	case Int:
		fmt.Fprintf(b, "%d", int64(t.Num))
	case Float:
		s := strconv.FormatFloat(t.Num, 'g', -1, 64)
		// Keep the Float kind readable back: integral floats get a ".0".
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		b.WriteString(s)
	case Compound:
		name := t.Sym.Name()
		if len(t.Args) == 2 && infixOps[name] {
			t.Args[0].write(b)
			b.WriteByte(' ')
			b.WriteString(name)
			b.WriteByte(' ')
			t.Args[1].write(b)
			return
		}
		if len(t.Args) == 1 && (name == "+" || name == "-" || name == "#") {
			b.WriteString(name)
			t.Args[0].write(b)
			return
		}
		writeAtomName(b, name)
		b.WriteByte('(')
		for i := range t.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			t.Args[i].write(b)
		}
		b.WriteByte(')')
	}
}
