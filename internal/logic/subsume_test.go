package logic

import (
	"testing"
	"testing/quick"
)

func mustC(s string) Clause { return MustParseClause(s) }

func TestSubsumesBasics(t *testing.T) {
	cases := []struct {
		c, d string
		want bool
	}{
		// A clause subsumes itself.
		{"p(X) :- q(X).", "p(X) :- q(X).", true},
		// More general head variable subsumes a constant instance.
		{"p(X) :- q(X).", "p(a) :- q(a).", true},
		{"p(a) :- q(a).", "p(X) :- q(X).", false},
		// Subset of body literals subsumes a superset.
		{"p(X) :- q(X).", "p(X) :- q(X), r(X).", true},
		{"p(X) :- q(X), r(X).", "p(X) :- q(X).", false},
		// Different predicate: no.
		{"p(X) :- q(X).", "p(X) :- r(X).", false},
		// Variable chaining must be consistent.
		{"p(X) :- q(X, Y), q(Y, X).", "p(a) :- q(a, b), q(b, a).", true},
		{"p(X) :- q(X, Y), q(Y, X).", "p(a) :- q(a, b), q(b, c).", false},
		// Two c-literals may map onto one d-literal (set semantics).
		{"p(X) :- q(X, Y), q(X, Z).", "p(a) :- q(a, b).", true},
		// Sign must match.
		{"p(X) :- \\+q(X).", "p(X) :- q(X).", false},
		{"p(X) :- \\+q(X).", "p(X) :- \\+q(X).", true},
		// Head mismatch.
		{"p(X) :- q(X).", "s(X) :- q(X).", false},
	}
	for _, cse := range cases {
		c, d := mustC(cse.c), mustC(cse.d)
		if got := Subsumes(&c, &d); got != cse.want {
			t.Errorf("Subsumes(%q, %q) = %v, want %v", cse.c, cse.d, got, cse.want)
		}
	}
}

func TestSubsumesIsNotSymmetric(t *testing.T) {
	c := mustC("p(X) :- q(X).")
	d := mustC("p(X) :- q(X), r(X).")
	if !ProperlySubsumes(&c, &d) {
		t.Fatal("c should properly subsume d")
	}
	if ProperlySubsumes(&d, &c) {
		t.Fatal("d should not properly subsume c")
	}
}

func TestSubsumesEqually(t *testing.T) {
	a := mustC("p(X) :- q(X, Y).")
	b := mustC("p(U) :- q(U, V), q(U, W).")
	if !SubsumesEqually(&a, &b) {
		t.Fatal("a and b are subsume-equivalent (extra literal is redundant)")
	}
}

func TestReducesTo(t *testing.T) {
	c := mustC("p(X) :- q(X, Y), q(X, Z).")
	r := ReducesTo(&c)
	if len(r.Body) != 1 {
		t.Fatalf("ReducesTo left %d literals, want 1: %s", len(r.Body), r.String())
	}
	if !SubsumesEqually(&c, &r) {
		t.Fatal("reduction changed clause meaning")
	}
	// Irreducible clause stays put.
	irr := mustC("p(X) :- q(X, Y), r(Y).")
	got := ReducesTo(&irr)
	if len(got.Body) != 2 {
		t.Fatalf("irreducible clause was reduced: %s", got.String())
	}
}

// Property: every clause subsumes itself (reflexivity).
func TestQuickSubsumesReflexive(t *testing.T) {
	f := func(qa, qb quickTerm) bool {
		c := Clause{Head: Comp("h", qa.T), Body: []Literal{Lit(Comp("b", qb.T))}}
		return Subsumes(&c, &c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: dropping a body literal yields a clause that subsumes the
// original (generalisation direction of the refinement lattice).
func TestQuickDropLiteralGeneralises(t *testing.T) {
	f := func(qa, qb, qc quickTerm) bool {
		full := Clause{Head: Comp("h", qa.T), Body: []Literal{
			Lit(Comp("b1", qb.T)), Lit(Comp("b2", qc.T)),
		}}
		dropped := Clause{Head: full.Head, Body: full.Body[:1]}
		return Subsumes(&dropped, &full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: applying a grounding substitution yields a clause the original
// subsumes (instantiation direction).
func TestQuickInstanceIsSubsumed(t *testing.T) {
	f := func(qa quickTerm) bool {
		c := Clause{Head: Comp("h", qa.T), Body: []Literal{Lit(Comp("b", qa.T))}}
		bs := NewBindings(c.NumVars())
		for v := range c.Vars() {
			bs.Bind(v, A("gconst"))
		}
		inst := Clause{Head: bs.Resolve(c.Head), Body: []Literal{Lit(bs.Resolve(c.Body[0].Atom))}}
		return Subsumes(&c, &inst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
