package logic

import (
	"fmt"
	"strconv"
	"strings"
)

// The reader accepts a pragmatic Prolog subset sufficient for ILP programs:
//
//	fact(a, b).
//	rule(X, Y) :- edge(X, Z), \+ blocked(Z), Z >= 3, path(Z, Y).
//	modeb(2, bond(+mol, -atomid, #bondtype)).
//	% line comment
//
// Supported: atoms (plain or quoted), variables (including anonymous _),
// integer and float constants (with leading minus), compounds, conjunction,
// negation-as-failure \+, infix comparisons = \= < =< > >= is, and prefix
// mode markers + - # (parsed as unary compounds for the mode package).

type tokenKind uint8

const (
	tkEOF tokenKind = iota
	tkAtom
	tkVar
	tkInt
	tkFloat
	tkPunct
)

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

type lexer struct {
	src string
	pos int
}

func isLower(c byte) bool { return c >= 'a' && c <= 'z' }
func isUpper(c byte) bool { return c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdent(c byte) bool { return c == '_' || isLower(c) || isUpper(c) || isDigit(c) }

func (lx *lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case c == '%':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			return
		}
	}
}

func (lx *lexer) next() (token, error) {
	lx.skipSpace()
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return token{kind: tkEOF, pos: start}, nil
	}
	c := lx.src[lx.pos]
	switch {
	case isLower(c):
		for lx.pos < len(lx.src) && isIdent(lx.src[lx.pos]) {
			lx.pos++
		}
		return token{kind: tkAtom, text: lx.src[start:lx.pos], pos: start}, nil
	case isUpper(c) || c == '_':
		for lx.pos < len(lx.src) && isIdent(lx.src[lx.pos]) {
			lx.pos++
		}
		return token{kind: tkVar, text: lx.src[start:lx.pos], pos: start}, nil
	case isDigit(c):
		return lx.lexNumber(start)
	case c == '\'':
		lx.pos++
		var b strings.Builder
		for lx.pos < len(lx.src) {
			c := lx.src[lx.pos]
			if c == '\\' && lx.pos+1 < len(lx.src) {
				b.WriteByte(lx.src[lx.pos+1])
				lx.pos += 2
				continue
			}
			if c == '\'' {
				lx.pos++
				return token{kind: tkAtom, text: b.String(), pos: start}, nil
			}
			b.WriteByte(c)
			lx.pos++
		}
		return token{}, fmt.Errorf("logic: unterminated quoted atom at %d", start)
	}
	// Multi-char punctuation first.
	rest := lx.src[lx.pos:]
	for _, op := range []string{":-", "\\+", "\\=", "=<", ">="} {
		if strings.HasPrefix(rest, op) {
			lx.pos += len(op)
			return token{kind: tkPunct, text: op, pos: start}, nil
		}
	}
	switch c {
	case '(', ')', ',', '.', '=', '<', '>', '+', '-', '#', '*', '/':
		lx.pos++
		return token{kind: tkPunct, text: string(c), pos: start}, nil
	}
	return token{}, fmt.Errorf("logic: unexpected character %q at %d", c, start)
}

func (lx *lexer) lexNumber(start int) (token, error) {
	digitsFrom := lx.pos
	for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
		lx.pos++
	}
	isFloat := false
	if lx.pos+1 < len(lx.src) && lx.src[lx.pos] == '.' && isDigit(lx.src[lx.pos+1]) {
		isFloat = true
		lx.pos++
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.pos++
		}
	}
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		save := lx.pos
		lx.pos++
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
			lx.pos++
		}
		if lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			isFloat = true
			for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
				lx.pos++
			}
		} else {
			lx.pos = save
		}
	}
	text := lx.src[digitsFrom:lx.pos]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, fmt.Errorf("logic: bad number %q at %d: %v", text, start, err)
	}
	kind := tkInt
	if isFloat {
		kind = tkFloat
	}
	return token{kind: kind, text: text, num: v, pos: start}, nil
}

type parser struct {
	lx   lexer
	tok  token
	vars map[string]int // variable name → index, scoped per clause
	next int            // next free variable index in current clause
}

func newParser(src string) (*parser, error) {
	p := &parser{lx: lexer{src: src}}
	return p, p.advance()
}

func (p *parser) advance() error {
	tok, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) expectPunct(text string) error {
	if p.tok.kind != tkPunct || p.tok.text != text {
		return fmt.Errorf("logic: expected %q at %d, got %q", text, p.tok.pos, p.tok.text)
	}
	return p.advance()
}

func (p *parser) resetClauseScope() {
	p.vars = make(map[string]int)
	p.next = 0
}

func (p *parser) varIndex(name string) int {
	if name == "_" {
		i := p.next
		p.next++
		return i
	}
	if i, ok := p.vars[name]; ok {
		return i
	}
	i := p.next
	p.vars[name] = i
	p.next++
	return i
}

// parseTerm parses a term with infix arithmetic (+ - at the loosest level,
// * / binding tighter); comparisons are handled only at body-literal level.
func (p *parser) parseTerm() (Term, error) {
	return p.parseAddSub()
}

func (p *parser) parseAddSub() (Term, error) {
	left, err := p.parseMulDiv()
	if err != nil {
		return Term{}, err
	}
	for p.tok.kind == tkPunct && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		right, err := p.parseMulDiv()
		if err != nil {
			return Term{}, err
		}
		left = Comp(op, left, right)
	}
	return left, nil
}

func (p *parser) parseMulDiv() (Term, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return Term{}, err
	}
	for p.tok.kind == tkPunct && (p.tok.text == "*" || p.tok.text == "/") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		right, err := p.parsePrimary()
		if err != nil {
			return Term{}, err
		}
		left = Comp(op, left, right)
	}
	return left, nil
}

// parsePrimary parses a term without infix operators.
func (p *parser) parsePrimary() (Term, error) {
	switch p.tok.kind {
	case tkVar:
		i := p.varIndex(p.tok.text)
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return V(i), nil
	case tkInt:
		v := p.tok.num
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return IntTerm(int64(v)), nil
	case tkFloat:
		v := p.tok.num
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return FloatTerm(v), nil
	case tkAtom:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		if p.tok.kind == tkPunct && p.tok.text == "(" {
			if err := p.advance(); err != nil {
				return Term{}, err
			}
			var args []Term
			for {
				a, err := p.parseTerm()
				if err != nil {
					return Term{}, err
				}
				args = append(args, a)
				if p.tok.kind == tkPunct && p.tok.text == "," {
					if err := p.advance(); err != nil {
						return Term{}, err
					}
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return Term{}, err
			}
			return Comp(name, args...), nil
		}
		return A(name), nil
	case tkPunct:
		// Prefix: negative numbers (-3, -0.5) and mode markers +t, -t, #t.
		if p.tok.text == "+" || p.tok.text == "-" || p.tok.text == "#" {
			op := p.tok.text
			if err := p.advance(); err != nil {
				return Term{}, err
			}
			arg, err := p.parsePrimary()
			if err != nil {
				return Term{}, err
			}
			if op == "-" && arg.IsNumber() {
				arg.Num = -arg.Num
				return arg, nil
			}
			return Comp(op, arg), nil
		}
	}
	return Term{}, fmt.Errorf("logic: unexpected token %q at %d", p.tok.text, p.tok.pos)
}

var infixBodyOps = map[string]bool{
	"=": true, "\\=": true, "<": true, "=<": true, ">": true, ">=": true,
}

// parseBodyLiteral parses one body literal: optional \+, then a term with an
// optional infix comparison.
func (p *parser) parseBodyLiteral() (Literal, error) {
	neg := false
	if p.tok.kind == tkPunct && p.tok.text == "\\+" {
		neg = true
		if err := p.advance(); err != nil {
			return Literal{}, err
		}
	}
	left, err := p.parseTerm()
	if err != nil {
		return Literal{}, err
	}
	isInfix := (p.tok.kind == tkPunct && infixBodyOps[p.tok.text]) ||
		(p.tok.kind == tkAtom && p.tok.text == "is")
	if isInfix {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return Literal{}, err
		}
		right, err := p.parseTerm()
		if err != nil {
			return Literal{}, err
		}
		left = Comp(op, left, right)
	}
	if !left.IsCallable() {
		return Literal{}, fmt.Errorf("logic: body literal %s is not callable", left)
	}
	return Literal{Neg: neg, Atom: left}, nil
}

// parseClause parses one clause terminated by '.'.
func (p *parser) parseClause() (Clause, error) {
	p.resetClauseScope()
	head, err := p.parseTerm()
	if err != nil {
		return Clause{}, err
	}
	if !head.IsCallable() {
		return Clause{}, fmt.Errorf("logic: clause head %s is not callable", head)
	}
	c := Clause{Head: head}
	if p.tok.kind == tkPunct && p.tok.text == ":-" {
		if err := p.advance(); err != nil {
			return Clause{}, err
		}
		for {
			lit, err := p.parseBodyLiteral()
			if err != nil {
				return Clause{}, err
			}
			c.Body = append(c.Body, lit)
			if p.tok.kind == tkPunct && p.tok.text == "," {
				if err := p.advance(); err != nil {
					return Clause{}, err
				}
				continue
			}
			break
		}
	}
	if err := p.expectPunct("."); err != nil {
		return Clause{}, err
	}
	return c, nil
}

// ParseTerm parses a single term from s. Variables are numbered in order of
// first occurrence.
func ParseTerm(s string) (Term, error) {
	p, err := newParser(s)
	if err != nil {
		return Term{}, err
	}
	p.resetClauseScope()
	t, err := p.parseTerm()
	if err != nil {
		return Term{}, err
	}
	if p.tok.kind != tkEOF {
		return Term{}, fmt.Errorf("logic: trailing input %q at %d", p.tok.text, p.tok.pos)
	}
	return t, nil
}

// MustParseTerm is ParseTerm, panicking on error; intended for literals in
// tests and dataset definitions.
func MustParseTerm(s string) Term {
	t, err := ParseTerm(s)
	if err != nil {
		panic(err)
	}
	return t
}

// ParseClause parses a single clause (terminated by '.') from s.
func ParseClause(s string) (Clause, error) {
	p, err := newParser(s)
	if err != nil {
		return Clause{}, err
	}
	c, err := p.parseClause()
	if err != nil {
		return Clause{}, err
	}
	if p.tok.kind != tkEOF {
		return Clause{}, fmt.Errorf("logic: trailing input %q at %d", p.tok.text, p.tok.pos)
	}
	return c, nil
}

// MustParseClause is ParseClause, panicking on error.
func MustParseClause(s string) Clause {
	c, err := ParseClause(s)
	if err != nil {
		panic(err)
	}
	return c
}

// ParseProgram parses a sequence of clauses from s.
func ParseProgram(s string) ([]Clause, error) {
	p, err := newParser(s)
	if err != nil {
		return nil, err
	}
	var out []Clause
	for p.tok.kind != tkEOF {
		c, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// MustParseProgram is ParseProgram, panicking on error.
func MustParseProgram(s string) []Clause {
	cs, err := ParseProgram(s)
	if err != nil {
		panic(err)
	}
	return cs
}
