package logic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestInternStability(t *testing.T) {
	a := Intern("foo")
	b := Intern("foo")
	c := Intern("bar")
	if a != b {
		t.Fatalf("Intern not stable: %v vs %v", a, b)
	}
	if a == c {
		t.Fatalf("distinct names mapped to one symbol")
	}
	if a.Name() != "foo" || c.Name() != "bar" {
		t.Fatalf("Name round-trip failed: %q %q", a.Name(), c.Name())
	}
}

func TestInternConcurrent(t *testing.T) {
	done := make(chan Symbol, 64)
	for i := 0; i < 64; i++ {
		go func() { done <- Intern("concurrent_symbol") }()
	}
	first := <-done
	for i := 1; i < 64; i++ {
		if s := <-done; s != first {
			t.Fatalf("concurrent Intern returned different symbols: %v vs %v", s, first)
		}
	}
}

func TestTermConstructors(t *testing.T) {
	v := V(3)
	if v.Kind != Var || v.VarIndex() != 3 {
		t.Fatalf("V(3) = %+v", v)
	}
	a := A("hello")
	if a.Kind != Atom || a.Sym.Name() != "hello" {
		t.Fatalf("A: %+v", a)
	}
	n := IntTerm(-7)
	if n.Kind != Int || n.Num != -7 {
		t.Fatalf("IntTerm: %+v", n)
	}
	f := FloatTerm(2.5)
	if f.Kind != Float || f.Num != 2.5 {
		t.Fatalf("FloatTerm: %+v", f)
	}
	c := Comp("f", V(0), A("x"))
	if c.Kind != Compound || c.Arity() != 2 {
		t.Fatalf("Comp: %+v", c)
	}
	if Comp("g").Kind != Atom {
		t.Fatalf("0-arity Comp should degenerate to Atom")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Term
		want bool
	}{
		{A("x"), A("x"), true},
		{A("x"), A("y"), false},
		{V(1), V(1), true},
		{V(1), V(2), false},
		{IntTerm(3), IntTerm(3), true},
		{IntTerm(3), FloatTerm(3), false}, // structural equality is kind-strict
		{Comp("f", A("a")), Comp("f", A("a")), true},
		{Comp("f", A("a")), Comp("f", A("b")), false},
		{Comp("f", A("a")), Comp("g", A("a")), false},
		{Comp("f", A("a")), Comp("f", A("a"), A("b")), false},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestGroundAndMaxVar(t *testing.T) {
	g := Comp("f", A("a"), IntTerm(1))
	if !g.IsGround() {
		t.Errorf("%s should be ground", g)
	}
	ng := Comp("f", A("a"), Comp("g", V(4)))
	if ng.IsGround() {
		t.Errorf("%s should not be ground", ng)
	}
	if got := ng.MaxVar(); got != 4 {
		t.Errorf("MaxVar = %d, want 4", got)
	}
	if got := g.MaxVar(); got != -1 {
		t.Errorf("MaxVar of ground = %d, want -1", got)
	}
}

func TestOffsetVars(t *testing.T) {
	tm := Comp("f", V(0), Comp("g", V(2)), A("k"))
	shifted := tm.OffsetVars(10)
	want := Comp("f", V(10), Comp("g", V(12)), A("k"))
	if !Equal(shifted, want) {
		t.Fatalf("OffsetVars: got %s want %s", shifted, want)
	}
	// Original untouched.
	if !Equal(tm, Comp("f", V(0), Comp("g", V(2)), A("k"))) {
		t.Fatalf("OffsetVars mutated the input")
	}
}

func TestRenameVarsFirstOccurrence(t *testing.T) {
	tm := Comp("f", V(7), V(3), V(7))
	ren := make(map[int]int)
	next := 0
	got := tm.RenameVars(ren, &next)
	want := Comp("f", V(0), V(1), V(0))
	if !Equal(got, want) {
		t.Fatalf("RenameVars: got %s want %s", got, want)
	}
	if next != 2 {
		t.Fatalf("next = %d, want 2", next)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		t    Term
		want string
	}{
		{V(0), "A"},
		{V(25), "Z"},
		{V(26), "V26"},
		{A("foo"), "foo"},
		{A("Needs Quote"), "'Needs Quote'"},
		{IntTerm(42), "42"},
		{FloatTerm(2.5), "2.5"},
		{Comp("f", A("a"), V(1)), "f(a, B)"},
		{Comp("=<", V(0), IntTerm(3)), "A =< 3"},
		{Comp("+", A("mol")), "+mol"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.t, got, c.want)
		}
	}
}

// randomTerm builds a random term with variables < nv and depth ≤ d.
func randomTerm(r *rand.Rand, nv, d int) Term {
	switch k := r.Intn(5); {
	case k == 0 && nv > 0:
		return V(r.Intn(nv))
	case k == 1:
		return A([]string{"a", "b", "c", "d"}[r.Intn(4)])
	case k == 2:
		return IntTerm(int64(r.Intn(10)))
	case k == 3 || d == 0:
		return FloatTerm(float64(r.Intn(5)) / 2)
	default:
		n := 1 + r.Intn(3)
		args := make([]Term, n)
		for i := range args {
			args[i] = randomTerm(r, nv, d-1)
		}
		return CompSym(Intern([]string{"f", "g", "h"}[r.Intn(3)]), args...)
	}
}

type quickTerm struct{ T Term }

// Generate makes quickTerm usable with testing/quick.
func (quickTerm) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickTerm{T: randomTerm(r, 4, 3)})
}

func TestQuickEqualReflexive(t *testing.T) {
	f := func(q quickTerm) bool { return Equal(q.T, q.T) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOffsetRoundTrip(t *testing.T) {
	f := func(q quickTerm) bool {
		return Equal(q.T.OffsetVars(13).OffsetVars(-13), q.T)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(q quickTerm) bool {
		// Canonicalise variable numbering first so the parse (which numbers
		// by first occurrence) can reproduce it.
		ren := make(map[int]int)
		next := 0
		canon := q.T.RenameVars(ren, &next)
		back, err := ParseTerm(canon.String())
		if err != nil {
			return false
		}
		return Equal(back, canon)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
