package logic

import "strconv"

// freezeTerm replaces every variable in t with a distinguished fresh constant
// ("skolemisation"), so one-way matching can be implemented with ordinary
// unification: the frozen side contributes no bindable variables.
func freezeTerm(t Term) Term {
	switch t.Kind {
	case Var:
		return A("$fv" + strconv.Itoa(int(t.Sym)))
	case Compound:
		args := make([]Term, len(t.Args))
		for i := range t.Args {
			args[i] = freezeTerm(t.Args[i])
		}
		return Term{Kind: Compound, Sym: t.Sym, Args: args}
	}
	return t
}

// freezeClause freezes every literal of c.
func freezeClause(c *Clause) Clause {
	out := Clause{Head: freezeTerm(c.Head)}
	if len(c.Body) > 0 {
		out.Body = make([]Literal, len(c.Body))
		for i := range c.Body {
			out.Body[i] = Literal{Neg: c.Body[i].Neg, Atom: freezeTerm(c.Body[i].Atom)}
		}
	}
	return out
}

// Subsumes reports whether clause c θ-subsumes clause d: there exists a
// substitution θ such that every literal of cθ appears in d (heads matching
// heads, body literals matching body literals of the same sign). This is
// Plotkin's generality order restricted to rule-shaped clauses, the ordering
// the ILP search space is structured by.
func Subsumes(c, d *Clause) bool {
	fd := freezeClause(d)
	bs := NewBindings(c.NumVars())
	if !bs.Unify(c.Head, fd.Head) {
		return false
	}
	return matchBody(c.Body, fd.Body, bs)
}

// matchBody tries to map each remaining literal of cs onto some literal of
// ds under bs, with backtracking. ds literals may be reused (set semantics).
func matchBody(cs []Literal, ds []Literal, bs *Bindings) bool {
	if len(cs) == 0 {
		return true
	}
	lit := cs[0]
	for i := range ds {
		if ds[i].Neg != lit.Neg {
			continue
		}
		mark := bs.Mark()
		if bs.Unify(lit.Atom, ds[i].Atom) && matchBody(cs[1:], ds, bs) {
			return true
		}
		bs.Undo(mark)
	}
	return false
}

// SubsumesEqually reports whether c and d subsume each other
// (syntactic variants modulo θ-subsumption equivalence).
func SubsumesEqually(c, d *Clause) bool { return Subsumes(c, d) && Subsumes(d, c) }

// ProperlySubsumes reports whether c subsumes d but not vice versa
// (c is strictly more general than d).
func ProperlySubsumes(c, d *Clause) bool { return Subsumes(c, d) && !Subsumes(d, c) }

// ReducesTo removes body literals of c that are redundant under
// θ-subsumption: literal L is dropped when c still subsumes c\{L}
// (Plotkin reduction, greedy variant). The head is kept. The result is
// subsume-equivalent to the input: it trivially subsumes c as a subset,
// and the drop condition guarantees the converse.
func ReducesTo(c *Clause) Clause {
	cur := Clause{Head: c.Head, Body: append([]Literal(nil), c.Body...)}
	for i := 0; i < len(cur.Body); {
		cand := Clause{Head: cur.Head, Body: append(append([]Literal(nil), cur.Body[:i]...), cur.Body[i+1:]...)}
		if Subsumes(c, &cand) {
			cur = cand
			continue
		}
		i++
	}
	return cur
}
