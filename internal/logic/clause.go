package logic

import (
	"math"
	"strings"
)

// Literal is a (possibly negated) callable term appearing in a clause body.
// Negation is negation-as-failure.
type Literal struct {
	Neg  bool
	Atom Term
}

// Lit wraps a positive literal around an atom or compound term.
func Lit(t Term) Literal { return Literal{Atom: t} }

// NegLit wraps a negated literal around an atom or compound term.
func NegLit(t Term) Literal { return Literal{Neg: true, Atom: t} }

// String renders the literal in Prolog syntax.
func (l Literal) String() string {
	if l.Neg {
		return "\\+" + l.Atom.String()
	}
	return l.Atom.String()
}

// EqualLiteral reports structural equality of two literals.
func EqualLiteral(a, b Literal) bool { return a.Neg == b.Neg && Equal(a.Atom, b.Atom) }

// Clause is a definite clause Head :- Body. A fact has an empty body.
type Clause struct {
	Head Term
	Body []Literal
}

// Fact wraps a head-only clause.
func Fact(head Term) Clause { return Clause{Head: head} }

// Rule builds a clause from a head and body atoms (all positive).
func Rule(head Term, body ...Term) Clause {
	c := Clause{Head: head}
	for _, t := range body {
		c.Body = append(c.Body, Lit(t))
	}
	return c
}

// IsFact reports whether the clause has no body.
func (c *Clause) IsFact() bool { return len(c.Body) == 0 }

// NumVars returns one more than the largest variable index in the clause
// (i.e. the size a Bindings store needs for it), or 0 if ground.
func (c *Clause) NumVars() int {
	m := c.Head.MaxVar()
	for i := range c.Body {
		if v := c.Body[i].Atom.MaxVar(); v > m {
			m = v
		}
	}
	return m + 1
}

// OffsetVars returns a copy of the clause with all variable indices shifted
// by k (used to rename a program clause apart before resolution).
func (c *Clause) OffsetVars(k int) Clause {
	out := Clause{Head: c.Head.OffsetVars(k)}
	if len(c.Body) > 0 {
		out.Body = make([]Literal, len(c.Body))
		for i := range c.Body {
			out.Body[i] = Literal{Neg: c.Body[i].Neg, Atom: c.Body[i].Atom.OffsetVars(k)}
		}
	}
	return out
}

// Canonical returns a copy with variables renumbered 0,1,2,... in order of
// first occurrence (head first, then body left to right). Two clauses that
// are equal up to variable renaming have Equal canonical forms.
func (c Clause) Canonical() Clause {
	ren := make(map[int]int)
	next := 0
	out := Clause{Head: c.Head.RenameVars(ren, &next)}
	if len(c.Body) > 0 {
		out.Body = make([]Literal, len(c.Body))
		for i := range c.Body {
			out.Body[i] = Literal{Neg: c.Body[i].Neg, Atom: c.Body[i].Atom.RenameVars(ren, &next)}
		}
	}
	return out
}

// Key returns a string identifying the clause up to variable renaming.
func (c Clause) Key() string {
	canon := c.Canonical()
	return canon.String()
}

// Hash64 returns an FNV-1a structural hash of the clause (variables hash by
// index, so it distinguishes only up to structural equality, not renaming).
// Pair with EqualClause to build allocation-free clause-keyed caches:
// structurally equal clauses hash equally.
func (c *Clause) Hash64() uint64 {
	const fnvOffset uint64 = 14695981039346656037
	h := hashTerm(fnvOffset, c.Head)
	for i := range c.Body {
		if c.Body[i].Neg {
			h = hashByte(h, 1)
		} else {
			h = hashByte(h, 0)
		}
		h = hashTerm(h, c.Body[i].Atom)
	}
	return h
}

func hashByte(h uint64, b byte) uint64 {
	const fnvPrime uint64 = 1099511628211
	return (h ^ uint64(b)) * fnvPrime
}

func hashU64(h, v uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h = hashByte(h, byte(v>>s))
	}
	return h
}

func hashTerm(h uint64, t Term) uint64 {
	h = hashByte(h, byte(t.Kind))
	switch t.Kind {
	case Int, Float:
		num := t.Num
		if num == 0 {
			num = 0 // normalize -0.0 so Equal terms hash equally
		}
		h = hashU64(h, math.Float64bits(num))
	default:
		h = hashU64(h, uint64(t.Sym))
	}
	h = hashByte(h, byte(len(t.Args)))
	for i := range t.Args {
		h = hashTerm(h, t.Args[i])
	}
	return h
}

// EqualClause reports structural equality (not up to renaming; use Key or
// Canonical for alpha-equivalence).
func EqualClause(a, b *Clause) bool {
	if !Equal(a.Head, b.Head) || len(a.Body) != len(b.Body) {
		return false
	}
	for i := range a.Body {
		if !EqualLiteral(a.Body[i], b.Body[i]) {
			return false
		}
	}
	return true
}

// Length returns the number of literals in the clause including the head.
func (c *Clause) Length() int { return 1 + len(c.Body) }

// String renders the clause in Prolog syntax, without the trailing period.
func (c Clause) String() string {
	var b strings.Builder
	b.WriteString(c.Head.String())
	if len(c.Body) > 0 {
		b.WriteString(" :- ")
		for i := range c.Body {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Body[i].String())
		}
	}
	return b.String()
}

// Vars returns the set of variable indices used in the clause.
func (c *Clause) Vars() map[int]bool {
	set := make(map[int]bool)
	c.Head.CollectVars(set)
	for i := range c.Body {
		c.Body[i].Atom.CollectVars(set)
	}
	return set
}
