package logic

import (
	"testing"
	"testing/quick"
)

func TestUnifyBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"a", "a", true},
		{"a", "b", false},
		{"X", "a", true},
		{"a", "X", true},
		{"X", "Y", true},
		{"f(X, b)", "f(a, Y)", true},
		{"f(X, X)", "f(a, b)", false},
		{"f(X, X)", "f(a, a)", true},
		{"f(a)", "g(a)", false},
		{"f(a)", "f(a, b)", false},
		{"3", "3", true},
		{"3", "4", false},
		{"3", "3.0", true}, // numeric unification crosses Int/Float
		{"f(g(X), X)", "f(g(h(Y)), h(a))", true},
	}
	for _, c := range cases {
		// Parse both sides in one clause scope so shared names share vars
		// only within each side; use separate scopes and offset the second.
		ta := MustParseTerm(c.a)
		tb := MustParseTerm(c.b).OffsetVars(ta.MaxVar() + 1)
		bs := NewBindings(16)
		if got := bs.Unify(ta, tb); got != c.want {
			t.Errorf("Unify(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestUnifyBindingVisible(t *testing.T) {
	bs := NewBindings(4)
	x := V(0)
	if !bs.Unify(x, A("hello")) {
		t.Fatal("Unify failed")
	}
	if got := bs.Resolve(x); !Equal(got, A("hello")) {
		t.Fatalf("Resolve = %s", got)
	}
}

func TestMarkUndo(t *testing.T) {
	bs := NewBindings(8)
	if !bs.Unify(V(0), A("a")) {
		t.Fatal("bind 0")
	}
	mark := bs.Mark()
	if !bs.Unify(V(1), A("b")) || !bs.Unify(V(2), V(1)) {
		t.Fatal("bind 1,2")
	}
	bs.Undo(mark)
	if got := bs.Walk(V(1)); got.Kind != Var {
		t.Fatalf("V(1) still bound to %s after Undo", got)
	}
	if got := bs.Walk(V(2)); got.Kind != Var {
		t.Fatalf("V(2) still bound to %s after Undo", got)
	}
	if got := bs.Resolve(V(0)); !Equal(got, A("a")) {
		t.Fatalf("V(0) lost its pre-mark binding: %s", got)
	}
}

func TestWalkChain(t *testing.T) {
	bs := NewBindings(8)
	bs.Bind(0, V(1))
	bs.Bind(1, V(2))
	bs.Bind(2, A("end"))
	if got := bs.Walk(V(0)); !Equal(got, A("end")) {
		t.Fatalf("Walk chain = %s, want end", got)
	}
}

func TestResolveDeep(t *testing.T) {
	bs := NewBindings(8)
	bs.Bind(0, Comp("g", V(1)))
	bs.Bind(1, A("inner"))
	got := bs.Resolve(Comp("f", V(0), A("k")))
	want := Comp("f", Comp("g", A("inner")), A("k"))
	if !Equal(got, want) {
		t.Fatalf("Resolve = %s, want %s", got, want)
	}
}

func TestResolveSharesWhenUnbound(t *testing.T) {
	bs := NewBindings(4)
	tm := Comp("f", V(0), A("k"))
	got := bs.Resolve(tm)
	if !Equal(got, tm) {
		t.Fatalf("Resolve changed an unbound term: %s", got)
	}
}

func TestOccurCheck(t *testing.T) {
	bs := NewBindings(4)
	// X = f(X) must fail under UnifyOC.
	if bs.UnifyOC(V(0), Comp("f", V(0))) {
		t.Fatal("UnifyOC allowed cyclic binding")
	}
	bs.Reset()
	if !bs.UnifyOC(V(0), Comp("f", V(1))) {
		t.Fatal("UnifyOC rejected a sound binding")
	}
}

func TestBindingsGrow(t *testing.T) {
	bs := NewBindings(1)
	bs.Bind(100, A("far"))
	if got := bs.Resolve(V(100)); !Equal(got, A("far")) {
		t.Fatalf("binding beyond initial capacity lost: %s", got)
	}
}

// numEquiv is Equal except that Int and Float constants with the same value
// compare equal, matching the solver's numeric unification.
func numEquiv(a, b Term) bool {
	if a.IsNumber() && b.IsNumber() {
		return a.Num == b.Num
	}
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == Compound {
		if a.Sym != b.Sym || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !numEquiv(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	}
	return Equal(a, b)
}

// Property: if Unify(a, b) succeeds then Resolve(a) and Resolve(b) are equal
// (up to numeric Int/Float equivalence) — a genuine common instance exists.
func TestQuickUnifySoundness(t *testing.T) {
	f := func(qa, qb quickTerm) bool {
		a := qa.T
		b := qb.T.OffsetVars(a.MaxVar() + 1)
		bs := NewBindings(32)
		if !bs.Unify(a, b) {
			return true // nothing to check
		}
		return numEquiv(bs.Resolve(a), bs.Resolve(b))
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Unify is symmetric in success/failure.
func TestQuickUnifySymmetric(t *testing.T) {
	f := func(qa, qb quickTerm) bool {
		a := qa.T
		b := qb.T.OffsetVars(a.MaxVar() + 1)
		bs1 := NewBindings(32)
		bs2 := NewBindings(32)
		return bs1.Unify(a, b) == bs2.Unify(b, a)
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Undo restores unbound state for everything bound after the mark.
func TestQuickUndoRestores(t *testing.T) {
	f := func(qa, qb quickTerm) bool {
		a := qa.T
		b := qb.T.OffsetVars(a.MaxVar() + 1)
		bs := NewBindings(32)
		mark := bs.Mark()
		bs.Unify(a, b)
		bs.Undo(mark)
		set := make(map[int]bool)
		a.CollectVars(set)
		b.CollectVars(set)
		for v := range set {
			if got := bs.Walk(V(v)); got.Kind != Var || got.VarIndex() != v {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
