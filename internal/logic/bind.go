package logic

// Bindings is a mutable variable-binding store with a trail, supporting
// constant-time backtracking to an earlier mark. It is the only mutable
// structure involved in unification and deduction; one Bindings per
// goroutine makes concurrent proving over shared programs safe.
type Bindings struct {
	slots []Term
	trail []int32
}

// NewBindings returns a store with capacity for n variables; it grows on
// demand when terms with higher variable indices are bound.
func NewBindings(n int) *Bindings {
	return &Bindings{slots: make([]Term, n)}
}

func (bs *Bindings) grow(n int) {
	if n <= len(bs.slots) {
		return
	}
	ns := make([]Term, n+n/2+8)
	copy(ns, bs.slots)
	bs.slots = ns
}

// Reset unbinds every variable and clears the trail, keeping capacity.
func (bs *Bindings) Reset() {
	for i := range bs.slots {
		bs.slots[i] = Term{}
	}
	bs.trail = bs.trail[:0]
}

// Mark returns a token for the current trail position.
func (bs *Bindings) Mark() int { return len(bs.trail) }

// Undo unbinds every variable bound since mark.
func (bs *Bindings) Undo(mark int) {
	for i := len(bs.trail) - 1; i >= mark; i-- {
		bs.slots[bs.trail[i]] = Term{}
	}
	bs.trail = bs.trail[:mark]
}

// Bind records v ↦ t. The caller must ensure v is unbound.
func (bs *Bindings) Bind(v int, t Term) {
	bs.grow(v + 1)
	bs.slots[v] = t
	bs.trail = append(bs.trail, int32(v))
}

// Walk shallow-dereferences t: while t is a bound variable, follow the chain.
func (bs *Bindings) Walk(t Term) Term {
	for t.Kind == Var {
		i := int(t.Sym)
		if i >= len(bs.slots) || bs.slots[i].Kind == Invalid {
			return t
		}
		t = bs.slots[i]
	}
	return t
}

// Resolve deep-dereferences t, substituting all bound variables recursively.
// The result shares structure with t where no substitution applies.
func (bs *Bindings) Resolve(t Term) Term {
	t = bs.Walk(t)
	if t.Kind != Compound {
		return t
	}
	var args []Term
	for i := range t.Args {
		r := bs.Resolve(t.Args[i])
		if args == nil {
			if Equal(r, t.Args[i]) {
				continue
			}
			args = make([]Term, len(t.Args))
			copy(args, t.Args[:i])
		}
		args[i] = r
	}
	if args == nil {
		return t
	}
	return Term{Kind: Compound, Sym: t.Sym, Args: args}
}

// Unify attempts to unify x and y under the current bindings, extending them
// on success. On failure the store may hold partial bindings; callers should
// Mark before and Undo on failure (the solver does this at each choice
// point). No occur check is performed (standard for ILP workloads).
func (bs *Bindings) Unify(x, y Term) bool {
	x = bs.Walk(x)
	y = bs.Walk(y)
	if x.Kind == Var {
		if y.Kind == Var && x.Sym == y.Sym {
			return true
		}
		bs.Bind(int(x.Sym), y)
		return true
	}
	if y.Kind == Var {
		bs.Bind(int(y.Sym), x)
		return true
	}
	if x.IsNumber() && y.IsNumber() {
		return x.Num == y.Num
	}
	if x.Kind != y.Kind {
		return false
	}
	switch x.Kind {
	case Atom:
		return x.Sym == y.Sym
	case Compound:
		if x.Sym != y.Sym || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !bs.Unify(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// occurs reports whether variable v occurs in t under the current bindings.
func (bs *Bindings) occurs(v int, t Term) bool {
	t = bs.Walk(t)
	switch t.Kind {
	case Var:
		return int(t.Sym) == v
	case Compound:
		for i := range t.Args {
			if bs.occurs(v, t.Args[i]) {
				return true
			}
		}
	}
	return false
}

// UnifyOC is Unify with the occur check enabled: binding a variable to a term
// containing itself fails instead of creating a cyclic term.
func (bs *Bindings) UnifyOC(x, y Term) bool {
	x = bs.Walk(x)
	y = bs.Walk(y)
	if x.Kind == Var {
		if y.Kind == Var && x.Sym == y.Sym {
			return true
		}
		if bs.occurs(int(x.Sym), y) {
			return false
		}
		bs.Bind(int(x.Sym), y)
		return true
	}
	if y.Kind == Var {
		if bs.occurs(int(y.Sym), x) {
			return false
		}
		bs.Bind(int(y.Sym), x)
		return true
	}
	if x.IsNumber() && y.IsNumber() {
		return x.Num == y.Num
	}
	if x.Kind != y.Kind {
		return false
	}
	switch x.Kind {
	case Atom:
		return x.Sym == y.Sym
	case Compound:
		if x.Sym != y.Sym || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !bs.UnifyOC(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}
