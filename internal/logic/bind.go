package logic

// Bindings is a mutable variable-binding store with a trail, supporting
// constant-time backtracking to an earlier mark. It is the only mutable
// structure involved in unification and deduction; one Bindings per
// goroutine makes concurrent proving over shared programs safe.
type Bindings struct {
	slots []Term
	trail []int32
}

// NewBindings returns a store with capacity for n variables; it grows on
// demand when terms with higher variable indices are bound.
func NewBindings(n int) *Bindings {
	return &Bindings{slots: make([]Term, n)}
}

func (bs *Bindings) grow(n int) {
	if n <= len(bs.slots) {
		return
	}
	ns := make([]Term, n+n/2+8)
	copy(ns, bs.slots)
	bs.slots = ns
}

// Reset unbinds every variable and clears the trail, keeping capacity.
func (bs *Bindings) Reset() {
	for i := range bs.slots {
		bs.slots[i] = Term{}
	}
	bs.trail = bs.trail[:0]
}

// Mark returns a token for the current trail position.
func (bs *Bindings) Mark() int { return len(bs.trail) }

// Undo unbinds every variable bound since mark.
func (bs *Bindings) Undo(mark int) {
	for i := len(bs.trail) - 1; i >= mark; i-- {
		bs.slots[bs.trail[i]] = Term{}
	}
	bs.trail = bs.trail[:mark]
}

// Bind records v ↦ t. The caller must ensure v is unbound.
func (bs *Bindings) Bind(v int, t Term) {
	bs.grow(v + 1)
	bs.slots[v] = t
	bs.trail = append(bs.trail, int32(v))
}

// Walk shallow-dereferences t: while t is a bound variable, follow the chain.
func (bs *Bindings) Walk(t Term) Term {
	for t.Kind == Var {
		i := int(t.Sym)
		if i >= len(bs.slots) || bs.slots[i].Kind == Invalid {
			return t
		}
		t = bs.slots[i]
	}
	return t
}

// WalkOff shallow-dereferences t whose variables are shifted by off, the
// structure-sharing view the solver uses to rename program clauses apart
// without copying them. The offset applies only to t's own variables; slot
// contents are always stored offset-free, so the offset is consumed at the
// first dereference. It returns the walked term together with the offset
// still pending for that term's arguments (0 unless the result is a compound
// taken directly from t).
func (bs *Bindings) WalkOff(t Term, off int) (Term, int) {
	for t.Kind == Var {
		i := int(t.Sym) + off
		off = 0
		if i >= len(bs.slots) || bs.slots[i].Kind == Invalid {
			return Term{Kind: Var, Sym: Symbol(i)}, 0
		}
		t = bs.slots[i]
	}
	return t, off
}

// WalkRef is WalkOff without the term copies: it follows the chain through
// pointers, returning a pointer to the term the walk ends at — into the
// caller's structure or into the binding slots — plus the pending offset.
// The unbound-variable case must materialize the shifted variable, so the
// caller provides scratch storage for it. The result is read-only and its
// content is stable until a variable bound before the call is undone (slot
// growth reallocates the array but never mutates reachable contents).
func (bs *Bindings) WalkRef(t *Term, off int, scratch *Term) (*Term, int) {
	for t.Kind == Var {
		i := int(t.Sym) + off
		off = 0
		if i >= len(bs.slots) || bs.slots[i].Kind == Invalid {
			*scratch = Term{Kind: Var, Sym: Symbol(i)}
			return scratch, 0
		}
		t = &bs.slots[i]
	}
	return t, off
}

// bindOff records v ↦ t with t's variables shifted by off, materializing the
// shift into a fresh copy only when t actually contains variables (ground
// terms — the vast majority in ILP workloads — are shared as-is).
func (bs *Bindings) bindOff(v int, t Term, off int) {
	if off != 0 && !t.IsGround() {
		t = t.OffsetVars(off)
	}
	bs.Bind(v, t)
}

// Resolve deep-dereferences t, substituting all bound variables recursively.
// The result shares structure with t where no substitution applies.
func (bs *Bindings) Resolve(t Term) Term {
	t = bs.Walk(t)
	if t.Kind != Compound {
		return t
	}
	var args []Term
	for i := range t.Args {
		r := bs.Resolve(t.Args[i])
		if args == nil {
			if Equal(r, t.Args[i]) {
				continue
			}
			args = make([]Term, len(t.Args))
			copy(args, t.Args[:i])
		}
		args[i] = r
	}
	if args == nil {
		return t
	}
	return Term{Kind: Compound, Sym: t.Sym, Args: args}
}

// Unify attempts to unify x and y under the current bindings, extending them
// on success. On failure the store may hold partial bindings; callers should
// Mark before and Undo on failure (the solver does this at each choice
// point). No occur check is performed (standard for ILP workloads).
func (bs *Bindings) Unify(x, y Term) bool { return bs.UnifyOff(x, 0, y, 0) }

// UnifyOff unifies x and y whose variables are shifted by ox and oy
// respectively. Threading the offsets through the recursion is how the
// solver renames a program clause apart at resolution time without building
// an offset copy of it: only terms that end up stored in a binding slot are
// ever materialized (see bindOff), and only when non-ground.
func (bs *Bindings) UnifyOff(x Term, ox int, y Term, oy int) bool {
	x, ox = bs.WalkOff(x, ox)
	y, oy = bs.WalkOff(y, oy)
	if x.Kind == Var {
		if y.Kind == Var && x.Sym == y.Sym {
			return true
		}
		if oy == 0 {
			bs.Bind(int(x.Sym), y)
		} else {
			bs.bindOff(int(x.Sym), y, oy)
		}
		return true
	}
	if y.Kind == Var {
		if ox == 0 {
			bs.Bind(int(y.Sym), x)
		} else {
			bs.bindOff(int(y.Sym), x, ox)
		}
		return true
	}
	if x.IsNumber() && y.IsNumber() {
		return x.Num == y.Num
	}
	if x.Kind != y.Kind {
		return false
	}
	switch x.Kind {
	case Atom:
		return x.Sym == y.Sym
	case Compound:
		if x.Sym != y.Sym || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !bs.UnifyOff(x.Args[i], ox, y.Args[i], oy) {
				return false
			}
		}
		return true
	}
	return false
}

// EqualGroundOff reports whether x (under offset ox and the current
// bindings) dereferences to exactly the ground term y, comparing numbers
// numerically as Unify does. It is the solver's trail-free fast path for
// matching a ground goal against a ground fact: no binding can result, so
// equality is all unification could establish.
func (bs *Bindings) EqualGroundOff(x Term, ox int, y Term) bool {
	x, ox = bs.WalkOff(x, ox)
	if x.IsNumber() && y.IsNumber() {
		return x.Num == y.Num
	}
	if x.Kind != y.Kind {
		return false
	}
	switch x.Kind {
	case Atom:
		return x.Sym == y.Sym
	case Compound:
		if x.Sym != y.Sym || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !bs.EqualGroundOff(x.Args[i], ox, y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// occurs reports whether variable v occurs in t under the current bindings.
func (bs *Bindings) occurs(v int, t Term) bool {
	t = bs.Walk(t)
	switch t.Kind {
	case Var:
		return int(t.Sym) == v
	case Compound:
		for i := range t.Args {
			if bs.occurs(v, t.Args[i]) {
				return true
			}
		}
	}
	return false
}

// UnifyOC is Unify with the occur check enabled: binding a variable to a term
// containing itself fails instead of creating a cyclic term.
func (bs *Bindings) UnifyOC(x, y Term) bool {
	x = bs.Walk(x)
	y = bs.Walk(y)
	if x.Kind == Var {
		if y.Kind == Var && x.Sym == y.Sym {
			return true
		}
		if bs.occurs(int(x.Sym), y) {
			return false
		}
		bs.Bind(int(x.Sym), y)
		return true
	}
	if y.Kind == Var {
		if bs.occurs(int(y.Sym), x) {
			return false
		}
		bs.Bind(int(y.Sym), x)
		return true
	}
	if x.IsNumber() && y.IsNumber() {
		return x.Num == y.Num
	}
	if x.Kind != y.Kind {
		return false
	}
	switch x.Kind {
	case Atom:
		return x.Sym == y.Sym
	case Compound:
		if x.Sym != y.Sym || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !bs.UnifyOC(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}
