package logic

import (
	"strings"
	"testing"
)

func TestParseFact(t *testing.T) {
	c := MustParseClause("edge(a, b).")
	if !c.IsFact() || c.Head.Pred().String() != "edge/2" {
		t.Fatalf("parse fact: %+v", c)
	}
}

func TestParseRule(t *testing.T) {
	c := MustParseClause("path(X,Y) :- edge(X,Z), path(Z,Y).")
	if len(c.Body) != 2 {
		t.Fatalf("body length %d", len(c.Body))
	}
	// X in head and body share an index.
	if c.Head.Args[0].VarIndex() != c.Body[0].Atom.Args[0].VarIndex() {
		t.Fatal("shared variable name got distinct indices")
	}
}

func TestParseNumbers(t *testing.T) {
	c := MustParseClause("vals(3, -4, 2.5, -0.125, 1e3).")
	args := c.Head.Args
	if args[0].Kind != Int || args[0].Num != 3 {
		t.Errorf("arg0: %+v", args[0])
	}
	if args[1].Kind != Int || args[1].Num != -4 {
		t.Errorf("arg1: %+v", args[1])
	}
	if args[2].Kind != Float || args[2].Num != 2.5 {
		t.Errorf("arg2: %+v", args[2])
	}
	if args[3].Kind != Float || args[3].Num != -0.125 {
		t.Errorf("arg3: %+v", args[3])
	}
	if args[4].Kind != Float || args[4].Num != 1000 {
		t.Errorf("arg4: %+v", args[4])
	}
}

func TestParseNegationAndComparison(t *testing.T) {
	c := MustParseClause("good(X) :- \\+bad(X), X >= 10, X \\= 13.")
	if !c.Body[0].Neg {
		t.Fatal("\\+ not parsed as negation")
	}
	if c.Body[1].Atom.Sym.Name() != ">=" {
		t.Fatalf("comparison functor: %s", c.Body[1].Atom.Sym.Name())
	}
	if c.Body[2].Atom.Sym.Name() != "\\=" {
		t.Fatalf("inequality functor: %s", c.Body[2].Atom.Sym.Name())
	}
}

func TestParseModeMarkers(t *testing.T) {
	tm := MustParseTerm("bond(+mol, -atomid, #bondtype)")
	if tm.Args[0].Sym.Name() != "+" || tm.Args[0].Args[0].Sym.Name() != "mol" {
		t.Fatalf("mode marker: %+v", tm.Args[0])
	}
	if tm.Args[2].Sym.Name() != "#" {
		t.Fatalf("hash marker: %+v", tm.Args[2])
	}
}

func TestParseQuotedAtom(t *testing.T) {
	tm := MustParseTerm("'hello world'")
	if tm.Kind != Atom || tm.Sym.Name() != "hello world" {
		t.Fatalf("quoted atom: %+v", tm)
	}
	esc := MustParseTerm(`'it\'s'`)
	if esc.Sym.Name() != "it's" {
		t.Fatalf("escaped quote: %q", esc.Sym.Name())
	}
}

func TestParseAnonymousVarsAreFresh(t *testing.T) {
	c := MustParseClause("p(_, _).")
	if c.Head.Args[0].VarIndex() == c.Head.Args[1].VarIndex() {
		t.Fatal("two _ occurrences shared an index")
	}
}

func TestParseProgramWithComments(t *testing.T) {
	src := `
% background knowledge
edge(a, b).
edge(b, c). % trailing comment
path(X, Y) :- edge(X, Y).
`
	cs, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Fatalf("parsed %d clauses, want 3", len(cs))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"p(a",        // unclosed paren
		"p(a) q(b).", // missing operator
		"p(a)",       // missing period
		":- q(a).",   // missing head
		"p('unterminated).",
		"X.", // variable head is not callable
	}
	for _, s := range bad {
		if _, err := ParseClause(s); err == nil {
			t.Errorf("ParseClause(%q) succeeded, want error", s)
		}
	}
}

func TestParseClauseRoundTrip(t *testing.T) {
	srcs := []string{
		"p(A) :- q(A, b), \\+r(A), A =< 3",
		"edge(n1, n2)",
		"active(A) :- atm(A, B, c, 22, C), C >= 0.5",
	}
	for _, s := range srcs {
		c := MustParseClause(s + ".")
		back := MustParseClause(c.String() + ".")
		if !EqualClause(&c, &back) {
			t.Errorf("round trip changed clause:\n in: %s\nout: %s", s, back.String())
		}
	}
}

func TestParseProgramErrorPropagates(t *testing.T) {
	if _, err := ParseProgram("good(a). bad(."); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ParseProgram("p(a). q(b)"); err == nil || !strings.Contains(err.Error(), "expected") {
		t.Fatalf("expected 'expected' error, got %v", err)
	}
}
