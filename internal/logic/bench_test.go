package logic

import "testing"

func BenchmarkUnifyDeepTerms(b *testing.B) {
	x := MustParseTerm("f(g(X, h(Y)), k(Z, Z), bond(m1, A, B, 7))")
	y := MustParseTerm("f(g(a, h(b)), k(c, C), bond(M, a1, a2, T))").OffsetVars(10)
	bs := NewBindings(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mark := bs.Mark()
		if !bs.Unify(x, y) {
			b.Fatal("unify failed")
		}
		bs.Undo(mark)
	}
}

func BenchmarkUnifyFailFast(b *testing.B) {
	x := MustParseTerm("bond(m1, a1, a2, 7)")
	y := MustParseTerm("bond(m2, X, Y, T)")
	bs := NewBindings(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mark := bs.Mark()
		if bs.Unify(x, y) {
			b.Fatal("unify should fail")
		}
		bs.Undo(mark)
	}
}

func BenchmarkSubsumes(b *testing.B) {
	c := MustParseClause("active(M) :- bond(M, A, B, 7), atm(M, B, cl, T, C).")
	d := MustParseClause("active(m1) :- bond(m1, a1, a2, 7), atm(m1, a2, cl, 22, -0.2), atm(m1, a1, c, 10, 0.1), bond(m1, a2, a3, 1).")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Subsumes(&c, &d) {
			b.Fatal("should subsume")
		}
	}
}

func BenchmarkParseClause(b *testing.B) {
	src := "active(D) :- atm(D, A, n, T, C), lteq_chg(C, -0.4), bond(D, A, B, 7)."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseClause(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClauseCanonical(b *testing.B) {
	c := MustParseClause("p(X, Y) :- q(Y, Z), r(Z, X), q(X, W), s(W).")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Canonical()
	}
}

// BenchmarkUnifyOffRenaming measures renaming a clause head apart via the
// offset-threaded unifier, the resolution-time replacement for OffsetVars
// copies.
func BenchmarkUnifyOffRenaming(b *testing.B) {
	goal := MustParseTerm("atm(m1, A, carbon, T, C)")
	head := MustParseTerm("atm(M, A, E, T, C)")
	bs := NewBindings(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mark := bs.Mark()
		if !bs.UnifyOff(goal, 0, head, 10) {
			b.Fatal("unify failed")
		}
		bs.Undo(mark)
	}
}

// BenchmarkOffsetVarsThenUnify is the old-engine equivalent of the above:
// copy the clause apart, then unify.
func BenchmarkOffsetVarsThenUnify(b *testing.B) {
	goal := MustParseTerm("atm(m1, A, carbon, T, C)")
	head := MustParseTerm("atm(M, A, E, T, C)")
	bs := NewBindings(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mark := bs.Mark()
		if !bs.Unify(goal, head.OffsetVars(10)) {
			b.Fatal("unify failed")
		}
		bs.Undo(mark)
	}
}
