// Package logic implements the first-order logic substrate used by the ILP
// engine: interned symbols, terms, literals, clauses, substitutions,
// unification, θ-subsumption and a Prolog-subset reader/printer.
//
// Terms are immutable after construction; all mutation during deduction goes
// through a Bindings store with a trail, so the solver can backtrack cheaply
// and several goroutines can reason over the same program concurrently, each
// with its own Bindings.
package logic

import "sync"

// Symbol is an interned identifier for a functor or constant name.
// Comparing two symbols compares the underlying strings in O(1).
type Symbol int32

var symtab = struct {
	mu    sync.RWMutex
	names []string
	index map[string]Symbol
}{index: make(map[string]Symbol)}

// Intern returns the unique Symbol for name, creating it if necessary.
// It is safe for concurrent use.
func Intern(name string) Symbol {
	symtab.mu.RLock()
	s, ok := symtab.index[name]
	symtab.mu.RUnlock()
	if ok {
		return s
	}
	symtab.mu.Lock()
	defer symtab.mu.Unlock()
	if s, ok = symtab.index[name]; ok {
		return s
	}
	s = Symbol(len(symtab.names))
	symtab.names = append(symtab.names, name)
	symtab.index[name] = s
	return s
}

// Name returns the string this symbol interns.
func (s Symbol) Name() string {
	symtab.mu.RLock()
	defer symtab.mu.RUnlock()
	if s < 0 || int(s) >= len(symtab.names) {
		return "<bad symbol>"
	}
	return symtab.names[s]
}

// NumSymbols reports how many distinct symbols have been interned.
func NumSymbols() int {
	symtab.mu.RLock()
	defer symtab.mu.RUnlock()
	return len(symtab.names)
}
