package logic

import (
	"testing"
	"testing/quick"
)

func TestClauseBasics(t *testing.T) {
	c := MustParseClause("path(X, Y) :- edge(X, Z), path(Z, Y).")
	if c.IsFact() {
		t.Fatal("rule reported as fact")
	}
	if got := c.Length(); got != 3 {
		t.Fatalf("Length = %d, want 3", got)
	}
	if got := c.NumVars(); got != 3 {
		t.Fatalf("NumVars = %d, want 3", got)
	}
	f := MustParseClause("edge(a, b).")
	if !f.IsFact() || f.NumVars() != 0 {
		t.Fatalf("fact parse: %+v", f)
	}
}

func TestClauseString(t *testing.T) {
	c := MustParseClause("p(X) :- q(X, a), \\+r(X), X >= 3.")
	want := "p(A) :- q(A, a), \\+r(A), A >= 3"
	if got := c.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestClauseOffsetVars(t *testing.T) {
	c := MustParseClause("p(X) :- q(X, Y).")
	d := c.OffsetVars(5)
	if d.Head.Args[0].VarIndex() != 5 {
		t.Fatalf("head var not shifted: %s", d.String())
	}
	if d.Body[0].Atom.Args[1].VarIndex() != 6 {
		t.Fatalf("body var not shifted: %s", d.String())
	}
	// Original untouched.
	if c.Head.Args[0].VarIndex() != 0 {
		t.Fatal("OffsetVars mutated the receiver")
	}
}

func TestClauseCanonicalAlphaEquivalence(t *testing.T) {
	a := MustParseClause("p(X, Y) :- q(Y, X).")
	b := MustParseClause("p(U, W) :- q(W, U).")
	c := MustParseClause("p(U, W) :- q(U, W).")
	if a.Key() != b.Key() {
		t.Fatalf("alpha-equivalent clauses got different keys: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() == c.Key() {
		t.Fatalf("different clauses share a key: %q", a.Key())
	}
}

func TestEqualClause(t *testing.T) {
	a := MustParseClause("p(X) :- q(X).")
	b := MustParseClause("p(X) :- q(X).")
	c := MustParseClause("p(X) :- r(X).")
	if !EqualClause(&a, &b) {
		t.Fatal("identical clauses not equal")
	}
	if EqualClause(&a, &c) {
		t.Fatal("different clauses equal")
	}
}

func TestClauseVars(t *testing.T) {
	c := MustParseClause("p(X, Y) :- q(Y, Z).")
	vars := c.Vars()
	if len(vars) != 3 {
		t.Fatalf("Vars = %v, want 3 entries", vars)
	}
}

func TestRuleHelper(t *testing.T) {
	r := Rule(Comp("p", V(0)), Comp("q", V(0)), Comp("r", V(0)))
	if len(r.Body) != 2 || r.Body[0].Neg {
		t.Fatalf("Rule helper: %+v", r)
	}
}

// Property: Canonical is idempotent.
func TestQuickCanonicalIdempotent(t *testing.T) {
	f := func(qa, qb quickTerm) bool {
		head := Comp("h", qa.T)
		c := Clause{Head: head, Body: []Literal{Lit(Comp("b", qb.T))}}
		once := c.Canonical()
		twice := once.Canonical()
		return EqualClause(&once, &twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
