// Benchmarks regenerating the paper's evaluation artifacts, one benchmark
// per table/figure (see DESIGN.md §4 for the experiment index). The full
// paper-scale protocol lives in cmd/ilpbench; these benches run compact
// configurations sized for `go test -bench`, reporting the paper's
// headline quantities (speedup, time, MBytes, epochs, accuracy) through
// b.ReportMetric so shapes are visible straight from the bench output.
package ilp

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/covering"
	"repro/internal/datasets"
	"repro/internal/harness"
	"repro/internal/parcov"
	"repro/internal/search"
	"repro/internal/stats"
	"repro/internal/xval"
)

// benchScale keeps bench iterations in the ~second range; cmd/ilpbench
// reproduces the tables at paper scale.
const benchScale = 0.12

func benchDatasets(b *testing.B) []*datasets.Dataset {
	b.Helper()
	return datasets.PaperScaled(benchScale, 1)
}

// seqVirtualSeconds runs the sequential baseline on a training split and
// returns its simulated single-CPU seconds.
func seqVirtualSeconds(b *testing.B, ds *datasets.Dataset, fold xval.Fold) (float64, []Clause, float64) {
	b.Helper()
	ex := search.NewExamples(fold.TrainPos, fold.TrainNeg)
	res, err := covering.Learn(ds.KB, ex, ds.Modes, covering.Config{
		Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
	})
	if err != nil {
		b.Fatal(err)
	}
	secs := float64(res.Inferences) * cluster.DefaultCostModel.NsPerInference / 1e9
	acc := covering.Accuracy(ds.KB, res.Theory, fold.TestPos, fold.TestNeg, ds.Budget)
	return secs, res.Theory, acc
}

func trainFold(b *testing.B, ds *datasets.Dataset) xval.Fold {
	b.Helper()
	folds, err := xval.KFold(ds.Pos, ds.Neg, 5, 3)
	if err != nil {
		b.Fatal(err)
	}
	return folds[0]
}

func runParallel(b *testing.B, ds *datasets.Dataset, fold xval.Fold, p, w int) *core.Metrics {
	b.Helper()
	met, err := core.Learn(ds.KB, fold.TrainPos, fold.TrainNeg, ds.Modes, core.Config{
		Workers: p, Width: w, Seed: 3,
		Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
	})
	if err != nil {
		b.Fatal(err)
	}
	return met
}

// BenchmarkTable1_DatasetGeneration regenerates the three datasets at paper
// size (Table 1's characterisation is asserted, not just reported).
func BenchmarkTable1_DatasetGeneration(b *testing.B) {
	want := map[string][2]int{
		"carcinogenesis": {162, 136},
		"mesh":           {2840, 278},
		"pyrimidines":    {848, 764},
	}
	for i := 0; i < b.N; i++ {
		for _, ds := range datasets.Paper(int64(i + 1)) {
			name, pos, neg := ds.Characterize()
			if w := want[name]; pos != w[0] || neg != w[1] {
				b.Fatalf("%s: %d/%d, want %d/%d", name, pos, neg, w[0], w[1])
			}
		}
	}
}

// BenchmarkTable2_Speedup measures the speedup column structure: p ∈
// {2,4,8} at width 10 against the sequential baseline.
func BenchmarkTable2_Speedup(b *testing.B) {
	for _, ds := range benchDatasets(b) {
		ds := ds
		b.Run(ds.Name, func(b *testing.B) {
			fold := trainFold(b, ds)
			for i := 0; i < b.N; i++ {
				seqSecs, _, _ := seqVirtualSeconds(b, ds, fold)
				for _, p := range []int{2, 4, 8} {
					met := runParallel(b, ds, fold, p, 10)
					b.ReportMetric(stats.Speedup(seqSecs, met.VirtualTime.Seconds()), fmt.Sprintf("speedup_p%d", p))
				}
			}
		})
	}
}

// BenchmarkTable3_ExecutionTime reports simulated execution seconds for
// p ∈ {1, 8} at width 10.
func BenchmarkTable3_ExecutionTime(b *testing.B) {
	for _, ds := range benchDatasets(b) {
		ds := ds
		b.Run(ds.Name, func(b *testing.B) {
			fold := trainFold(b, ds)
			for i := 0; i < b.N; i++ {
				seqSecs, _, _ := seqVirtualSeconds(b, ds, fold)
				met := runParallel(b, ds, fold, 8, 10)
				b.ReportMetric(seqSecs, "sim_s_p1")
				b.ReportMetric(met.VirtualTime.Seconds(), "sim_s_p8")
			}
		})
	}
}

// BenchmarkTable4_Communication reports MBytes moved at p=8 for both
// widths; the unlimited pipeline must move at least as much as W=10.
func BenchmarkTable4_Communication(b *testing.B) {
	for _, ds := range benchDatasets(b) {
		ds := ds
		b.Run(ds.Name, func(b *testing.B) {
			fold := trainFold(b, ds)
			for i := 0; i < b.N; i++ {
				unl := runParallel(b, ds, fold, 8, 0)
				lim := runParallel(b, ds, fold, 8, 10)
				// At bench scale a single fold can invert the ordering
				// when the two configurations settle on different epoch
				// counts; the 5-fold paper-scale runs in EXPERIMENTS.md
				// verify the strict shape. Here we flag only gross
				// inversions.
				if float64(lim.CommBytes) > 1.5*float64(unl.CommBytes) {
					b.Fatalf("width 10 moved far more bytes (%d) than nolimit (%d)", lim.CommBytes, unl.CommBytes)
				}
				b.ReportMetric(float64(unl.CommBytes)/1e6, "MB_nolimit")
				b.ReportMetric(float64(lim.CommBytes)/1e6, "MB_w10")
			}
		})
	}
}

// BenchmarkTable5_Epochs reports epoch counts for p ∈ {2, 8} at width 10;
// epochs must not grow with processors.
func BenchmarkTable5_Epochs(b *testing.B) {
	for _, ds := range benchDatasets(b) {
		ds := ds
		b.Run(ds.Name, func(b *testing.B) {
			fold := trainFold(b, ds)
			for i := 0; i < b.N; i++ {
				m2 := runParallel(b, ds, fold, 2, 10)
				m8 := runParallel(b, ds, fold, 8, 10)
				if m8.Epochs > m2.Epochs {
					b.Fatalf("epochs grew with processors: p=2 %d, p=8 %d", m2.Epochs, m8.Epochs)
				}
				b.ReportMetric(float64(m2.Epochs), "epochs_p2")
				b.ReportMetric(float64(m8.Epochs), "epochs_p8")
			}
		})
	}
}

// BenchmarkTable6_Accuracy reports held-out accuracy of sequential vs
// parallel models on one fold.
func BenchmarkTable6_Accuracy(b *testing.B) {
	for _, ds := range benchDatasets(b) {
		ds := ds
		b.Run(ds.Name, func(b *testing.B) {
			fold := trainFold(b, ds)
			for i := 0; i < b.N; i++ {
				_, _, seqAcc := seqVirtualSeconds(b, ds, fold)
				met := runParallel(b, ds, fold, 8, 10)
				parAcc := covering.Accuracy(ds.KB, met.Theory, fold.TestPos, fold.TestNeg, ds.Budget)
				b.ReportMetric(100*seqAcc, "acc_seq_pct")
				b.ReportMetric(100*parAcc, "acc_p8_pct")
			}
		})
	}
}

// BenchmarkFig3_PipelineTrace runs the three-worker pipeline of Figure 3
// and reports the stage hand-off count per epoch (p×(p−1) by construction).
func BenchmarkFig3_PipelineTrace(b *testing.B) {
	ds := datasets.CarcinogenesisSized(24, 20, 1)
	for i := 0; i < b.N; i++ {
		var handOffs atomic.Int64
		met, err := core.Learn(ds.KB, ds.Pos, ds.Neg, ds.Modes, core.Config{
			Workers: 3, Width: 5, Seed: 3,
			Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
			Trace: func(e cluster.Event) {
				if e.Type == cluster.EvSend && e.Kind == 2 { // kindStage
					handOffs.Add(1)
				}
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		perEpoch := float64(handOffs.Load()) / float64(met.Epochs)
		// Each epoch runs at most p(p−1) = 6 hand-offs; a worker whose
		// partition is exhausted short-circuits its pipeline straight to
		// the master, so later epochs can run fewer.
		if perEpoch <= 0 || perEpoch > 6 {
			b.Fatalf("hand-offs per epoch = %v, want in (0, 6]", perEpoch)
		}
		b.ReportMetric(perEpoch, "handoffs/epoch")
	}
}

// BenchmarkAblationWidth sweeps the pipeline width at p=8 (Ablation A).
func BenchmarkAblationWidth(b *testing.B) {
	ds := datasets.PyrimidinesSized(100, 90, 1)
	fold := trainFold(b, ds)
	for _, w := range []int{1, 10, 0} {
		w := w
		name := fmt.Sprintf("w=%d", w)
		if w == 0 {
			name = "w=nolimit"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				met := runParallel(b, ds, fold, 8, w)
				b.ReportMetric(float64(met.CommBytes)/1e6, "MB")
				b.ReportMetric(met.VirtualTime.Seconds(), "sim_s")
			}
		})
	}
}

// BenchmarkAblationParallelCoverage contrasts p²-mdie with the
// parallel-coverage-testing baseline at p=4 (Ablation B).
func BenchmarkAblationParallelCoverage(b *testing.B) {
	ds := datasets.PyrimidinesSized(60, 54, 1)
	ds.Search.NodesLimit = 200
	fold := trainFold(b, ds)
	b.Run("p2mdie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			met := runParallel(b, ds, fold, 4, 10)
			b.ReportMetric(met.VirtualTime.Seconds(), "sim_s")
			b.ReportMetric(float64(met.CommMessages), "msgs")
		}
	})
	b.Run("parcov", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			met, err := parcov.Learn(ds.KB, fold.TrainPos, fold.TrainNeg, ds.Modes, parcov.Config{
				Workers: 4, Seed: 3,
				Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(met.VirtualTime.Seconds(), "sim_s")
			b.ReportMetric(float64(met.CommMessages), "msgs")
		}
	})
}

// BenchmarkAblationRepartition contrasts fixed partitions (the paper's
// choice) against per-epoch repartitioning (the §4.1 alternative the paper
// declined for its communication cost) — Ablation C.
func BenchmarkAblationRepartition(b *testing.B) {
	ds := datasets.MeshSized(300, 30, 1)
	fold := trainFold(b, ds)
	for _, repart := range []bool{false, true} {
		repart := repart
		name := "fixed"
		if repart {
			name = "per-epoch"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				met, err := core.Learn(ds.KB, fold.TrainPos, fold.TrainNeg, ds.Modes, core.Config{
					Workers: 8, Width: 10, Seed: 3,
					Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
					RepartitionEachEpoch: repart,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(met.CommBytes)/1e6, "MB")
				b.ReportMetric(met.VirtualTime.Seconds(), "sim_s")
			}
		})
	}
}

// BenchmarkHarnessSweep runs the full multi-table harness end to end at a
// tiny scale — the integration cost of regenerating every table at once.
func BenchmarkHarnessSweep(b *testing.B) {
	ds := datasets.PaperScaled(0.06, 1)
	cfg := harness.Config{
		Datasets: ds[:1],
		Procs:    []int{2, 4},
		Widths:   []int{harness.WidthUnlimited, 10},
		Folds:    2,
		Seed:     1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := harness.Run(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
