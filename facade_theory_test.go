package ilp

import (
	"strings"
	"testing"
)

func TestMinimizeTheoryFacade(t *testing.T) {
	rules, err := ParseTheory(`
		p(X) :- q(X).
		p(X) :- q(X), r(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	min := MinimizeTheory(rules)
	if len(min) != 1 {
		t.Fatalf("MinimizeTheory kept %d rules, want 1", len(min))
	}
}

func TestSummarizeTheoryFacade(t *testing.T) {
	rules, err := ParseTheory(`
		p(X) :- q(X), r(X).
		p(a).
	`)
	if err != nil {
		t.Fatal(err)
	}
	st := SummarizeTheory(rules)
	if st.Rules != 1 || st.Facts != 1 || st.MaxBodyLen != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if !strings.Contains(st.String(), "rules: 1") {
		t.Fatalf("String: %s", st)
	}
}

func TestEvaluateTheoryFacade(t *testing.T) {
	ds, err := DatasetByName("trains", 1)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := ParseTheory("eastbound(T) :- has_car(T, C), car_len(C, short), closed(C).")
	if err != nil {
		t.Fatal(err)
	}
	c := EvaluateTheory(ds, rules, ds.Pos, ds.Neg)
	if c.TP != 5 || c.TN != 5 || c.FP != 0 || c.FN != 0 {
		t.Fatalf("confusion: %+v", c)
	}
	if c.F1() != 1.0 || c.Accuracy() != 1.0 {
		t.Fatalf("metrics: %s", c)
	}
}

func TestLoadSaveDatasetFacade(t *testing.T) {
	ds, err := DatasetByName("trains", 1)
	if err != nil {
		t.Fatal(err)
	}
	text := SaveDataset(ds)
	back, err := LoadDataset("trains-copy", text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Pos) != len(ds.Pos) || len(back.Neg) != len(ds.Neg) {
		t.Fatal("examples lost in round trip")
	}
	back.Search = ds.Search
	back.Bottom = ds.Bottom
	res, err := LearnSequential(back)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(back, res.Theory, back.Pos, back.Neg); acc != 1.0 {
		t.Fatalf("reloaded accuracy = %v", acc)
	}
}

func TestParallelTheoryMinimizes(t *testing.T) {
	ds, err := DatasetByName("trains", 1)
	if err != nil {
		t.Fatal(err)
	}
	met, err := LearnParallel(ds, 2, 0) // unlimited width: may emit overlaps
	if err != nil {
		t.Fatal(err)
	}
	min := MinimizeTheory(met.Theory)
	if len(min) > len(met.Theory) {
		t.Fatal("minimisation grew the theory")
	}
	if acc := Accuracy(ds, min, ds.Pos, ds.Neg); acc < Accuracy(ds, met.Theory, ds.Pos, ds.Neg) {
		t.Fatal("minimisation lost accuracy")
	}
}
