package ilp

import (
	"strings"
	"testing"
)

func TestDatasetByName(t *testing.T) {
	ds, err := DatasetByName("trains", 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "trains" || len(ds.Pos) != 5 {
		t.Fatalf("trains: %+v", ds)
	}
	if _, err := DatasetByName("bogus", 1); err == nil {
		t.Fatal("bogus dataset accepted")
	}
}

func TestLearnSequentialOnTrains(t *testing.T) {
	ds, err := DatasetByName("trains", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LearnSequential(ds)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(ds, res.Theory, ds.Pos, ds.Neg); acc != 1.0 {
		t.Fatalf("trains accuracy = %v\n%s", acc, TheoryString(res.Theory))
	}
}

func TestLearnParallelOnTrains(t *testing.T) {
	ds, err := DatasetByName("trains", 1)
	if err != nil {
		t.Fatal(err)
	}
	met, err := LearnParallel(ds, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(ds, met.Theory, ds.Pos, ds.Neg); acc < 0.9 {
		t.Fatalf("parallel trains accuracy = %v\n%s", acc, TheoryString(met.Theory))
	}
	if met.Epochs < 1 || met.CommBytes <= 0 {
		t.Fatalf("metrics: %+v", met)
	}
}

func TestDefineCustomProblem(t *testing.T) {
	ds, err := Define("family",
		`
		parent(ann, bob). parent(ann, carol).
		parent(tom, bob). parent(tom, carol).
		parent(bob, dave). parent(carol, eve).
		female(ann). female(carol). female(eve).
		male(tom). male(bob). male(dave).
		`,
		`
		modeh(1, mother(+person, +person)).
		modeb(1, parent(+person, +person)).
		modeb(1, female(+person)).
		modeb(1, male(+person)).
		`,
		[]string{"mother(ann, bob)", "mother(ann, carol)", "mother(carol, eve)"},
		[]string{"mother(tom, bob)", "mother(bob, dave)", "mother(eve, ann)"},
	)
	if err != nil {
		t.Fatal(err)
	}
	ds.Search.MinPos = 2
	ds.Search.MinPrec = 0.99
	res, err := LearnSequential(ds)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(ds, res.Theory, ds.Pos, ds.Neg); acc != 1.0 {
		t.Fatalf("family accuracy = %v\n%s", acc, TheoryString(res.Theory))
	}
	// The classic definition must be found: parent + female.
	th := TheoryString(res.Theory)
	if !strings.Contains(th, "parent") || !strings.Contains(th, "female") {
		t.Fatalf("unexpected theory:\n%s", th)
	}
}

func TestDefineValidation(t *testing.T) {
	if _, err := Define("x", "p(a.", "modeh(1, t(+a)). modeb(1, p(+a)).", []string{"t(a)"}, nil); err == nil {
		t.Fatal("bad background accepted")
	}
	if _, err := Define("x", "p(a).", "nonsense", []string{"t(a)"}, nil); err == nil {
		t.Fatal("bad modes accepted")
	}
	if _, err := Define("x", "p(a).", "modeh(1, t(+a)). modeb(1, p(+a)).", []string{"t(X)"}, nil); err == nil {
		t.Fatal("non-ground example accepted")
	}
	if _, err := Define("x", "p(a).", "modeh(1, t(+a)). modeb(1, p(+a)).", nil, nil); err == nil {
		t.Fatal("no positives accepted")
	}
}

func TestCovers(t *testing.T) {
	ds, err := DatasetByName("trains", 1)
	if err != nil {
		t.Fatal(err)
	}
	theory, err := ParseTheory("eastbound(T) :- has_car(T, C), car_len(C, short), closed(C).")
	if err != nil {
		t.Fatal(err)
	}
	if !Covers(ds, theory, ds.Pos[0]) {
		t.Fatal("intended theory misses a positive")
	}
	if Covers(ds, theory, ds.Neg[0]) {
		t.Fatal("intended theory covers a negative")
	}
}

func TestCrossValidate(t *testing.T) {
	ds, err := DatasetByName("trains", 1)
	if err != nil {
		t.Fatal(err)
	}
	// trains has only 5 positives; 2 folds is the most we can ask of it
	// while keeping both classes in each split.
	cv, err := CrossValidate(ds, 2, 2, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Folds != 2 || len(cv.SeqAcc) != 2 || len(cv.ParAcc) != 2 {
		t.Fatalf("cv: %+v", cv)
	}
	if cv.MeanSeq() < 0 || cv.MeanSeq() > 1 || cv.MeanPar() < 0 || cv.MeanPar() > 1 {
		t.Fatalf("accuracies out of range: %+v", cv)
	}
}

func TestParseTheoryError(t *testing.T) {
	if _, err := ParseTheory("p(a) :-"); err == nil {
		t.Fatal("bad theory accepted")
	}
}
